package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// waitState polls until the job reaches a terminal state.
func waitState(t *testing.T, m *Manager, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		switch v.State {
		case StateDone, StateFailed, StateCancelled:
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobView{}
}

func smallRun(seed uint64) RunRequest {
	return RunRequest{
		Graph:  GraphSpec{Family: "complete-virtual", N: 200},
		Delta:  0.2,
		Trials: 4,
		Seed:   seed,
	}
}

func TestManagerRunsJobToCompletion(t *testing.T) {
	m := NewManager(Config{Workers: 2})
	defer m.Close(context.Background())

	v, err := m.Submit(smallRun(7))
	if err != nil {
		t.Fatal(err)
	}
	v = waitState(t, m, v.ID)
	if v.State != StateDone || v.Result == nil {
		t.Fatalf("state = %s, error = %q", v.State, v.Error)
	}
	r := v.Result
	if r.Trials != 4 || len(r.Reports) != 4 {
		t.Fatalf("result = %+v, want 4 trials with reports", r)
	}
	// On K_200 with δ = 0.2 the initial majority wins essentially always.
	if r.RedWins == 0 || r.Consensus == 0 {
		t.Errorf("red_wins = %d, consensus = %d; expected wins on an easy instance", r.RedWins, r.Consensus)
	}
	if r.Seed != 7 {
		t.Errorf("effective seed = %d, want the requested 7", r.Seed)
	}
}

func TestManagerDeterministicReplay(t *testing.T) {
	m := NewManager(Config{Workers: 4})
	defer m.Close(context.Background())

	req := RunRequest{
		Graph:  GraphSpec{Family: "random-regular", N: 512, D: 16, Seed: 5},
		Delta:  0.05,
		Trials: 8,
		Seed:   99,
	}
	a, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	ra := waitState(t, m, a.ID).Result
	rb := waitState(t, m, b.ID).Result
	if ra == nil || rb == nil {
		t.Fatal("missing results")
	}
	for i := range ra.Reports {
		if ra.Reports[i] != rb.Reports[i] {
			t.Fatalf("trial %d differs across identical jobs: %+v vs %+v", i, ra.Reports[i], rb.Reports[i])
		}
	}
}

func TestManagerAssignsSeedWhenOmitted(t *testing.T) {
	m := NewManager(Config{Workers: 1, RootSeed: 42})
	defer m.Close(context.Background())
	v, err := m.Submit(smallRun(0))
	if err != nil {
		t.Fatal(err)
	}
	r := waitState(t, m, v.ID).Result
	if r == nil || r.Seed == 0 {
		t.Fatalf("expected a derived non-zero effective seed, got %+v", r)
	}
}

func TestManagerRejectsInvalidRequests(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close(context.Background())
	for name, req := range map[string]RunRequest{
		"bad delta":      {Graph: cycleSpec(10), Delta: 0.7},
		"bad family":     {Graph: GraphSpec{Family: "petersen", N: 10}, Delta: 0.1},
		"missing n":      {Graph: GraphSpec{Family: "cycle"}, Delta: 0.1},
		"odd nd":         {Graph: GraphSpec{Family: "random-regular", N: 9, D: 3}, Delta: 0.1},
		"too many runs":  {Graph: cycleSpec(10), Delta: 0.1, Trials: 1 << 30},
		"dim overflow":   {Graph: GraphSpec{Family: "hypercube", Dim: 63}, Delta: 0.1},
		"dim wraparound": {Graph: GraphSpec{Family: "hypercube", Dim: 64}, Delta: 0.1},
		"torus overflow": {Graph: GraphSpec{Family: "torus", Rows: 1 << 32, Cols: 1 << 32}, Delta: 0.1},
	} {
		if _, err := m.Submit(req); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	s := m.Stats()
	if s.Rejected != 8 {
		t.Errorf("rejected = %d, want 8", s.Rejected)
	}
	if s.Submitted != 0 {
		t.Errorf("submitted = %d after only rejections, want 0", s.Submitted)
	}
}

func TestManagerPrunesFinishedJobs(t *testing.T) {
	m := NewManager(Config{Workers: 2, Retention: 3})
	defer m.Close(context.Background())
	var ids []string
	for i := 0; i < 6; i++ {
		v, err := m.Submit(smallRun(uint64(i + 1)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
		waitState(t, m, v.ID)
	}
	if len(m.List(0)) > 3 {
		t.Errorf("list has %d entries, want <= retention 3", len(m.List(0)))
	}
	if _, ok := m.Get(ids[0]); ok {
		t.Error("oldest finished job survived pruning")
	}
	if v, ok := m.Get(ids[5]); !ok || v.State != StateDone {
		t.Error("newest job was pruned")
	}
	// Counters survive eviction.
	if s := m.Stats(); s.Completed != 6 || s.Submitted != 6 {
		t.Errorf("stats = %+v, want 6 submitted/completed", s)
	}
}

func TestManagerCancelRunningJob(t *testing.T) {
	m := NewManager(Config{Workers: 1, TrialParallelism: 1})
	defer m.Close(context.Background())

	// Many fast trials: cancellation lands between trials.
	v, err := m.Submit(RunRequest{
		Graph:  GraphSpec{Family: "cycle", N: 4096},
		Delta:  0.0,
		Trials: 2000,
		// Cap rounds so each trial is quick but the batch is long.
		MaxRounds: 50,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for it to start, then cancel.
	for {
		cur, _ := m.Get(v.ID)
		if cur.State != StateQueued {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, ok := m.Cancel(v.ID); !ok {
		t.Fatal("cancel: unknown job")
	}
	final := waitState(t, m, v.ID)
	if final.State != StateCancelled && final.State != StateDone {
		t.Fatalf("state = %s after cancel", final.State)
	}
	if final.State == StateDone {
		t.Log("job finished before cancellation landed (slow machine); state done is acceptable")
	}
}

func TestManagerCancelQueuedJob(t *testing.T) {
	m := NewManager(Config{Workers: 1, TrialParallelism: 1})
	defer m.Close(context.Background())

	// Occupy the single worker...
	blocker, err := m.Submit(RunRequest{
		Graph: GraphSpec{Family: "cycle", N: 4096}, Delta: 0, Trials: 500, MaxRounds: 100, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// ...then queue a victim and cancel it before it runs.
	victim, err := m.Submit(smallRun(3))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := m.Cancel(victim.ID)
	if !ok {
		t.Fatal("cancel: unknown job")
	}
	if got.State != StateCancelled && got.State != StateRunning && got.State != StateDone {
		t.Fatalf("state = %s", got.State)
	}
	m.Cancel(blocker.ID)
	waitState(t, m, blocker.ID)
	final := waitState(t, m, victim.ID)
	if got.State == StateCancelled && final.State != StateCancelled {
		t.Errorf("cancelled-while-queued job later became %s", final.State)
	}
	if final.State == StateCancelled && final.Result != nil {
		t.Error("cancelled job has a result")
	}
}

func TestManagerQueueFull(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 1, TrialParallelism: 1})
	defer m.Close(context.Background())
	slow := RunRequest{
		Graph: GraphSpec{Family: "cycle", N: 4096}, Delta: 0, Trials: 500, MaxRounds: 100, Seed: 1,
	}
	var sawFull bool
	var ids []string
	for i := 0; i < 10; i++ {
		v, err := m.Submit(slow)
		if errors.Is(err, ErrQueueFull) {
			sawFull = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	if !sawFull {
		t.Error("10 submissions into a depth-1 queue never saw ErrQueueFull")
	}
	for _, id := range ids {
		m.Cancel(id)
	}
}

func TestManagerCloseRejectsAndDrains(t *testing.T) {
	m := NewManager(Config{Workers: 2})
	v, err := m.Submit(smallRun(11))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := m.Submit(smallRun(12)); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: err = %v, want ErrClosed", err)
	}
	// The pre-close job must have drained to done.
	final, _ := m.Get(v.ID)
	if final.State != StateDone {
		t.Errorf("pre-close job state = %s, want done", final.State)
	}
	// Closing again is idempotent.
	if err := m.Close(context.Background()); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestManagerCloseDeadlineCancelsInFlight(t *testing.T) {
	m := NewManager(Config{Workers: 1, TrialParallelism: 1})
	v, err := m.Submit(RunRequest{
		Graph: GraphSpec{Family: "cycle", N: 1 << 14}, Delta: 0, Trials: 4096, MaxRounds: 500, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("close: err = %v, want deadline exceeded", err)
	}
	final, _ := m.Get(v.ID)
	if final.State != StateCancelled && final.State != StateDone {
		t.Errorf("in-flight job state = %s after forced close", final.State)
	}
}

// TestManagerConcurrentChurn is the race-detector workout: submissions,
// polls, stats, and cancels all interleaving.
func TestManagerConcurrentChurn(t *testing.T) {
	m := NewManager(Config{Workers: 4, QueueDepth: 512, TrialParallelism: 2})
	defer m.Close(context.Background())

	const clients = 8
	var wg sync.WaitGroup
	ids := make(chan string, clients*10)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				v, err := m.Submit(RunRequest{
					Graph:  GraphSpec{Family: "complete-virtual", N: 100 + c},
					Delta:  0.2,
					Trials: 2,
					Seed:   uint64(c*100 + i + 1),
				})
				if err != nil {
					t.Error(err)
					return
				}
				ids <- v.ID
				m.Get(v.ID)
				m.Stats()
				m.List(5)
				if i%4 == 3 {
					m.Cancel(v.ID)
				}
			}
		}(c)
	}
	wg.Wait()
	close(ids)
	for id := range ids {
		v := waitState(t, m, id)
		if v.State == StateFailed {
			t.Errorf("job %s failed: %s", id, v.Error)
		}
	}
	s := m.Stats()
	if s.Submitted != clients*10 {
		t.Errorf("submitted = %d, want %d", s.Submitted, clients*10)
	}
	if s.Completed+s.Cancelled != clients*10 {
		t.Errorf("completed %d + cancelled %d != %d", s.Completed, s.Cancelled, clients*10)
	}
}

func TestJobEngineAndTimingFields(t *testing.T) {
	m := NewManager(Config{Workers: 2})
	defer m.Close(context.Background())

	// complete-virtual dispatches to the mean-field fast path by default.
	v, err := m.Submit(smallRun(21))
	if err != nil {
		t.Fatal(err)
	}
	v = waitState(t, m, v.ID)
	if v.State != StateDone {
		t.Fatalf("state = %s (%s)", v.State, v.Error)
	}
	if v.Result.Engine != "mean-field" {
		t.Errorf("engine = %q, want mean-field", v.Result.Engine)
	}
	if v.Result.QueueMS < 0 || v.Result.ElapsedMS < 0 {
		t.Errorf("negative timings: queue %d, elapsed %d", v.Result.QueueMS, v.Result.ElapsedMS)
	}

	// The spec-level opt-out forces the general engine.
	req := smallRun(22)
	req.Engine = "general"
	v, err = m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	v = waitState(t, m, v.ID)
	if v.State != StateDone || v.Result.Engine != "general" {
		t.Fatalf("forced-general job: state %s, engine %q", v.State, v.Result.Engine)
	}

	// A CSR family resolves general under auto.
	v, err = m.Submit(RunRequest{
		Graph: GraphSpec{Family: "random-regular", N: 64, D: 8, Seed: 1}, Delta: 0.2, Trials: 2, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	v = waitState(t, m, v.ID)
	if v.State != StateDone || v.Result.Engine != "general" {
		t.Fatalf("regular job: state %s, engine %q", v.State, v.Result.Engine)
	}

	st := m.Stats()
	if st.JobsMeanField != 1 || st.JobsGeneral != 2 {
		t.Errorf("engine counters = (mean-field %d, general %d), want (1, 2)", st.JobsMeanField, st.JobsGeneral)
	}
}

func TestSubmitRejectsBadEngine(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close(context.Background())

	req := smallRun(1)
	req.Engine = "warp"
	if _, err := m.Submit(req); err == nil {
		t.Error("unknown engine accepted by the server")
	}
	req = RunRequest{Graph: GraphSpec{Family: "cycle", N: 32}, Delta: 0.1, Engine: "mean-field"}
	if _, err := m.Submit(req); err == nil {
		t.Error("mean-field engine on cycle accepted by the server")
	}
}
