package serve

import (
	"sync"
	"testing"
)

func cycleSpec(n int) GraphSpec { return GraphSpec{Family: "cycle", N: n} }

func TestCacheHitOnSecondGet(t *testing.T) {
	c := NewGraphCache(4)
	g1, hit, err := c.Get(cycleSpec(10))
	if err != nil || hit {
		t.Fatalf("first get: hit = %v, err = %v", hit, err)
	}
	g2, hit, err := c.Get(cycleSpec(10))
	if err != nil || !hit {
		t.Fatalf("second get: hit = %v, err = %v", hit, err)
	}
	if g1 != g2 {
		t.Error("second get returned a different graph instance")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Size != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, size 1", s)
	}
}

func TestCacheKeyCanonicalisation(t *testing.T) {
	// Family-irrelevant parameters must not split entries: a stray d, p,
	// or seed on a deterministic family builds the identical graph.
	a := GraphSpec{Family: "cycle", N: 10}
	b := GraphSpec{Family: "cycle", N: 10, D: 7, P: 0.3, Seed: 99}
	if a.Key() != b.Key() {
		t.Errorf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	// Distinct parameters must split.
	if cycleSpec(10).Key() == cycleSpec(12).Key() {
		t.Error("distinct specs share a key")
	}
	c := GraphSpec{Family: "random-regular", N: 64, D: 4, Seed: 1}
	d := GraphSpec{Family: "random-regular", N: 64, D: 4, Seed: 2}
	if c.Key() == d.Key() {
		t.Error("distinct generator seeds share a key")
	}
}

func TestCacheEvictionLRU(t *testing.T) {
	c := NewGraphCache(2)
	for _, n := range []int{10, 11} {
		if _, _, err := c.Get(cycleSpec(n)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch 10 so 11 is the LRU victim.
	if _, hit, _ := c.Get(cycleSpec(10)); !hit {
		t.Fatal("expected hit on resident entry")
	}
	if _, _, err := c.Get(cycleSpec(12)); err != nil {
		t.Fatal(err)
	}
	if !c.Contains(cycleSpec(10)) || c.Contains(cycleSpec(11)) || !c.Contains(cycleSpec(12)) {
		t.Errorf("LRU eviction wrong: 10 in = %v, 11 in = %v, 12 in = %v",
			c.Contains(cycleSpec(10)), c.Contains(cycleSpec(11)), c.Contains(cycleSpec(12)))
	}
	if s := c.Stats(); s.Evictions != 1 || s.Size != 2 {
		t.Errorf("stats = %+v, want 1 eviction at size 2", s)
	}
}

func TestCacheCoalescesConcurrentBuilds(t *testing.T) {
	c := NewGraphCache(4)
	const waiters = 16
	got := make([]any, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g, _, err := c.Get(GraphSpec{Family: "random-regular", N: 256, D: 8, Seed: 3})
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = g
		}(i)
	}
	wg.Wait()
	for i := 1; i < waiters; i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent gets returned distinct graph instances; build was not coalesced")
		}
	}
}

func TestCacheBuildErrorNotCached(t *testing.T) {
	c := NewGraphCache(4)
	bad := GraphSpec{Family: "gnp", N: 50, P: 1e-9, Seed: 1} // isolated vertices
	if _, _, err := c.Get(bad); err == nil {
		t.Fatal("expected build error for near-empty gnp")
	}
	if c.Contains(bad) {
		t.Error("failed build was cached")
	}
}
