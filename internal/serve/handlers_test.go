package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Manager) {
	t.Helper()
	mgr := NewManager(cfg)
	ts := httptest.NewServer(NewServer(mgr))
	t.Cleanup(func() {
		ts.Close()
		mgr.Close(context.Background())
	})
	return ts, mgr
}

func doJSON(t *testing.T, method, url string, body any, wantStatus int, out any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e errorBody
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("%s %s = %s (%s), want %d", method, url, resp.Status, e.Error, wantStatus)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

func pollDone(t *testing.T, base, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var v JobView
	for time.Now().Before(deadline) {
		doJSON(t, http.MethodGet, base+"/v1/runs/"+id, nil, http.StatusOK, &v)
		switch v.State {
		case StateDone, StateFailed, StateCancelled:
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish over HTTP", id)
	return v
}

// TestEndToEndWithCacheHit is the acceptance-criterion flow: submit a
// Best-of-Three run over HTTP, poll it to completion with RedWon/Rounds
// populated, then observe a graph-cache hit on a second identical
// submission.
func TestEndToEndWithCacheHit(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 2})

	req := RunRequest{
		Graph:  GraphSpec{Family: "random-regular", N: 1024, D: 32, Seed: 4},
		Delta:  0.1,
		Trials: 3,
		Seed:   21,
	}
	var accepted JobView
	doJSON(t, http.MethodPost, ts.URL+"/v1/runs", req, http.StatusAccepted, &accepted)
	if accepted.ID == "" || accepted.State != StateQueued {
		t.Fatalf("accepted = %+v", accepted)
	}

	first := pollDone(t, ts.URL, accepted.ID)
	if first.State != StateDone || first.Result == nil {
		t.Fatalf("first job: state = %s, error = %q", first.State, first.Error)
	}
	r := first.Result
	if r.CacheHit {
		t.Error("first submission reported a cache hit on a cold pool")
	}
	if len(r.Reports) != 3 {
		t.Fatalf("reports = %d, want 3", len(r.Reports))
	}
	for i, rep := range r.Reports {
		if rep.Rounds <= 0 {
			t.Errorf("trial %d: rounds = %d, want > 0", i, rep.Rounds)
		}
	}
	// δ = 0.1 on a d = 32 regular graph: red wins, fast.
	if r.RedWins != 3 || r.Consensus != 3 {
		t.Errorf("red_wins = %d, consensus = %d, want 3 each", r.RedWins, r.Consensus)
	}
	if r.PredictedRounds <= 0 || !strings.Contains(r.Precondition, "n=1024") {
		t.Errorf("theory fields missing: %+v", r)
	}

	var second JobView
	doJSON(t, http.MethodPost, ts.URL+"/v1/runs", req, http.StatusAccepted, &second)
	done := pollDone(t, ts.URL, second.ID)
	if done.State != StateDone || done.Result == nil || !done.Result.CacheHit {
		t.Fatalf("second identical submission did not hit the graph pool: %+v", done.Result)
	}
	// Identical request (same seed) must reproduce identical outcomes.
	for i := range r.Reports {
		if r.Reports[i] != done.Result.Reports[i] {
			t.Errorf("trial %d not reproducible over HTTP: %+v vs %+v", i, r.Reports[i], done.Result.Reports[i])
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1})
	cases := map[string]any{
		"malformed json": "{not json",
		"unknown field":  map[string]any{"graph": map[string]any{"family": "cycle", "n": 10}, "delta": 0.1, "bogus": 1},
		"bad delta":      RunRequest{Graph: GraphSpec{Family: "cycle", N: 10}, Delta: 0.9},
		"unknown family": RunRequest{Graph: GraphSpec{Family: "kite", N: 10}, Delta: 0.1},
		"oversized n":    RunRequest{Graph: GraphSpec{Family: "cycle", N: 1 << 30}, Delta: 0.1},
		"bad tie rule":   RunRequest{Graph: GraphSpec{Family: "cycle", N: 10}, Delta: 0.1, Rule: &RuleSpec{K: 2, Tie: "coin"}},
	}
	for name, body := range cases {
		var buf bytes.Buffer
		if s, ok := body.(string); ok {
			buf.WriteString(s)
		} else if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", &buf)
		if err != nil {
			t.Fatal(err)
		}
		var e errorBody
		_ = json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
		if e.Error == "" {
			t.Errorf("%s: empty error body", name)
		}
	}
}

func TestGetUnknownRun(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1})
	doJSON(t, http.MethodGet, ts.URL+"/v1/runs/run-999999", nil, http.StatusNotFound, nil)
	doJSON(t, http.MethodDelete, ts.URL+"/v1/runs/run-999999", nil, http.StatusNotFound, nil)
}

func TestListRunsNewestFirst(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		var v JobView
		doJSON(t, http.MethodPost, ts.URL+"/v1/runs", RunRequest{
			Graph: GraphSpec{Family: "complete-virtual", N: 50 + i}, Delta: 0.2, Seed: uint64(i + 1),
		}, http.StatusAccepted, &v)
		ids = append(ids, v.ID)
	}
	for _, id := range ids {
		pollDone(t, ts.URL, id)
	}
	var list []JobView
	doJSON(t, http.MethodGet, ts.URL+"/v1/runs", nil, http.StatusOK, &list)
	if len(list) != 3 {
		t.Fatalf("list has %d entries, want 3", len(list))
	}
	for i, v := range list {
		if want := ids[len(ids)-1-i]; v.ID != want {
			t.Errorf("list[%d] = %s, want %s (newest first)", i, v.ID, want)
		}
	}
}

func TestStatsAndHealth(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 2})
	var health map[string]string
	doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, http.StatusOK, &health)
	if health["status"] != "ok" {
		t.Errorf("health = %v", health)
	}

	req := RunRequest{Graph: GraphSpec{Family: "complete-virtual", N: 100}, Delta: 0.2, Trials: 2, Seed: 9}
	var v JobView
	doJSON(t, http.MethodPost, ts.URL+"/v1/runs", req, http.StatusAccepted, &v)
	pollDone(t, ts.URL, v.ID)
	doJSON(t, http.MethodPost, ts.URL+"/v1/runs", req, http.StatusAccepted, &v)
	pollDone(t, ts.URL, v.ID)

	var s Stats
	doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, http.StatusOK, &s)
	if s.Submitted != 2 || s.Completed != 2 {
		t.Errorf("stats = %+v, want 2 submitted and completed", s)
	}
	if s.TrialsRun != 4 {
		t.Errorf("trials_run = %d, want 4", s.TrialsRun)
	}
	if s.Cache.Hits < 1 {
		t.Errorf("cache hits = %d, want >= 1 after a repeat", s.Cache.Hits)
	}
	if s.Workers != 2 || s.UptimeSeconds <= 0 {
		t.Errorf("stats plumbing: %+v", s)
	}
}

func TestCancelOverHTTP(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1, TrialParallelism: 1})
	// One slow job to occupy the worker, one queued victim.
	var blocker, victim JobView
	slow := RunRequest{Graph: GraphSpec{Family: "cycle", N: 4096}, Delta: 0, Trials: 500, MaxRounds: 100, Seed: 1}
	doJSON(t, http.MethodPost, ts.URL+"/v1/runs", slow, http.StatusAccepted, &blocker)
	doJSON(t, http.MethodPost, ts.URL+"/v1/runs", smallRun(5), http.StatusAccepted, &victim)

	var got JobView
	doJSON(t, http.MethodDelete, ts.URL+"/v1/runs/"+victim.ID, nil, http.StatusOK, &got)
	doJSON(t, http.MethodDelete, ts.URL+"/v1/runs/"+blocker.ID, nil, http.StatusOK, nil)
	b := pollDone(t, ts.URL, blocker.ID)
	vf := pollDone(t, ts.URL, victim.ID)
	if got.State == StateCancelled && vf.State != StateCancelled {
		t.Errorf("victim: cancel reported %s but final state is %s", got.State, vf.State)
	}
	if b.State == StateFailed {
		t.Errorf("blocker failed: %s", b.Error)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /v1/nope = %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/runs", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("PUT /v1/runs = %d, want 405", resp.StatusCode)
	}
}

// Example-style smoke check that IDs are stable and sequential, which the
// load-test client in cmd/bo3sweep relies on for readable output.
func TestSequentialIDs(t *testing.T) {
	_, mgr := newTestServer(t, Config{Workers: 1})
	a, err := mgr.Submit(smallRun(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := mgr.Submit(smallRun(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != "run-000000" || b.ID != "run-000001" {
		t.Errorf("ids = %s, %s", a.ID, b.ID)
	}
	_ = fmt.Sprintf("%s %s", a.ID, b.ID)
}
