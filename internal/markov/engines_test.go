package markov

import (
	"math"
	"testing"

	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/opinion"
	"repro/internal/rng"
)

// TestEnginesMatchExactChain is the E20-style acceptance test for the
// engine dispatch: on K_n the mean-field fast path and the general
// sharded engine must both be statistically indistinguishable from the
// exact blue-count chain. Each engine's empirical red-win rate over
// `trials` runs is required to sit inside the 99% CI around the exact
// absorption probability, and the two engines inside the 99% CI of each
// other — the fast path follows a different RNG stream, so distributional
// (not byte) equality is exactly the contract.
func TestEnginesMatchExactChain(t *testing.T) {
	const (
		n      = 64
		pBlue  = 0.4
		trials = 1200
		z99    = 2.576
	)
	chain := New(n, 3)
	exact := chain.RedWinProbability(pBlue, 4000)

	winRate := func(engine dynamics.Engine) float64 {
		redWins := 0
		for i := 0; i < trials; i++ {
			src := rng.NewFrom(101, uint64(i))
			init := opinion.RandomConfig(n, pBlue, src)
			p, err := dynamics.New(graph.NewKn(n), dynamics.BestOfThree, init,
				dynamics.Options{Seed: src.Uint64(), Workers: 1, Engine: engine})
			if err != nil {
				t.Fatal(err)
			}
			if p.Engine() != engine {
				t.Fatalf("requested engine %v, resolved %v", engine, p.Engine())
			}
			res := p.RunQuiet(4000)
			if res.Consensus && res.Winner == opinion.Red {
				redWins++
			}
		}
		return float64(redWins) / trials
	}

	mf := winRate(dynamics.EngineMeanField)
	gen := winRate(dynamics.EngineGeneral)

	se := math.Sqrt(exact*(1-exact)/trials) + 1e-9
	if d := math.Abs(mf - exact); d > z99*se {
		t.Errorf("mean-field red-win rate %v vs exact %v: |diff| %v > 99%% CI %v", mf, exact, d, z99*se)
	}
	if d := math.Abs(gen - exact); d > z99*se {
		t.Errorf("general red-win rate %v vs exact %v: |diff| %v > 99%% CI %v", gen, exact, d, z99*se)
	}
	// Engine-vs-engine: both empirical, so the difference carries two
	// independent Monte Carlo errors.
	if d := math.Abs(mf - gen); d > z99*se*math.Sqrt2 {
		t.Errorf("mean-field %v vs general %v: |diff| %v > 99%% CI %v", mf, gen, d, z99*se*math.Sqrt2)
	}
}

// TestMeanFieldMeanRoundsMatchesChain compares expected consensus time:
// the chain's absorption mean against the mean-field engine's empirical
// mean over many cheap trials.
func TestMeanFieldMeanRoundsMatchesChain(t *testing.T) {
	const (
		n      = 128
		pBlue  = 0.35
		trials = 1500
	)
	chain := New(n, 3)
	abs := chain.Absorb(chain.InitialDistribution(pBlue), 1e-12, 4000)

	sum := 0.0
	sumSq := 0.0
	for i := 0; i < trials; i++ {
		src := rng.NewFrom(202, uint64(i))
		init := opinion.RandomConfig(n, pBlue, src)
		p, err := dynamics.New(graph.NewKn(n), dynamics.BestOfThree, init,
			dynamics.Options{Seed: src.Uint64(), Engine: dynamics.EngineMeanField})
		if err != nil {
			t.Fatal(err)
		}
		r := float64(p.RunQuiet(4000).Rounds)
		sum += r
		sumSq += r * r
	}
	mean := sum / trials
	sd := math.Sqrt(sumSq/trials - mean*mean)
	se := sd/math.Sqrt(trials) + 1e-9
	if d := math.Abs(mean - abs.MeanRounds); d > 2.576*se {
		t.Errorf("mean rounds %v vs exact %v: |diff| %v > 99%% CI %v", mean, abs.MeanRounds, d, 2.576*se)
	}
}
