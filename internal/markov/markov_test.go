package markov

import (
	"math"
	"testing"

	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/opinion"
	"repro/internal/rng"
)

func TestNewPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"n too small": func() { New(1, 3) },
		"even k":      func() { New(10, 2) },
		"zero k":      func() { New(10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, c := range []struct {
		n int
		p float64
	}{{0, 0.5}, {1, 0.3}, {10, 0}, {10, 1}, {50, 0.2}, {500, 0.7}} {
		pmf := binomialPMF(c.n, c.p)
		sum := 0.0
		for _, v := range pmf {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("Bin(%d,%v) pmf sums to %v", c.n, c.p, sum)
		}
	}
}

func TestBinomialPMFKnownValues(t *testing.T) {
	pmf := binomialPMF(2, 0.5)
	want := []float64{0.25, 0.5, 0.25}
	for i := range want {
		if math.Abs(pmf[i]-want[i]) > 1e-12 {
			t.Errorf("pmf[%d] = %v, want %v", i, pmf[i], want[i])
		}
	}
}

func TestTransitionRowsAreDistributions(t *testing.T) {
	c := New(30, 3)
	for b := 0; b <= 30; b++ {
		row := c.transitionRow(b)
		sum := 0.0
		for _, v := range row {
			if v < -1e-15 {
				t.Fatalf("negative transition mass at b=%d", b)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("row %d sums to %v", b, sum)
		}
	}
}

func TestAbsorbingStates(t *testing.T) {
	c := New(20, 3)
	row0 := c.transitionRow(0)
	if math.Abs(row0[0]-1) > 1e-12 {
		t.Error("all-red state not absorbing")
	}
	rowN := c.transitionRow(20)
	if math.Abs(rowN[20]-1) > 1e-12 {
		t.Error("all-blue state not absorbing")
	}
}

func TestStepDistributionConservesMass(t *testing.T) {
	c := New(40, 3)
	pi := c.InitialDistribution(0.4)
	for t2 := 0; t2 < 10; t2++ {
		pi = c.StepDistribution(pi)
		sum := 0.0
		for _, v := range pi {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("mass %v after %d steps", sum, t2+1)
		}
	}
}

func TestStepDistributionPanicsOnBadLength(t *testing.T) {
	c := New(10, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("bad length did not panic")
		}
	}()
	c.StepDistribution(make([]float64, 5))
}

func TestPointDistribution(t *testing.T) {
	c := New(10, 3)
	pi := c.PointDistribution(4)
	if pi[4] != 1 {
		t.Error("point mass misplaced")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range point did not panic")
		}
	}()
	c.PointDistribution(11)
}

func TestSymmetryAtHalf(t *testing.T) {
	// From exactly b = n/2... the chain is colour-symmetric: red and blue
	// win with (almost) equal probability. (Self-exclusion gives red a
	// tiny edge at even n: a blue vertex sees b−1 blues but a red vertex
	// sees b of n−1 — so demand near-equality, slightly favouring red.)
	c := New(20, 3)
	res := c.Absorb(c.PointDistribution(10), 1e-12, 2000)
	if res.Escaped > 1e-9 {
		t.Fatalf("mass escaped: %v", res.Escaped)
	}
	if math.Abs(res.RedWins+res.BlueWins-1) > 1e-9 {
		t.Fatalf("wins sum to %v", res.RedWins+res.BlueWins)
	}
	if res.RedWins < res.BlueWins-1e-9 {
		t.Errorf("red %v should not trail blue %v from the midpoint", res.RedWins, res.BlueWins)
	}
	if math.Abs(res.RedWins-0.5) > 0.05 {
		t.Errorf("red wins %v from midpoint, want ~0.5", res.RedWins)
	}
}

func TestMajorityAdvantageExact(t *testing.T) {
	// Red-majority starts must give red a large exact advantage.
	// At n = 50 the initial binomial fluctuation still flips the sampled
	// majority with a few percent probability (the exact value is 0.9475),
	// so the bound is 0.9 rather than "w.h.p.".
	c := New(50, 3)
	p := c.RedWinProbability(0.35, 2000)
	if p < 0.9 {
		t.Errorf("exact red win probability %v at pBlue=0.35", p)
	}
	// Colour symmetry: the blue-majority start mirrors it.
	q := c.RedWinProbability(0.65, 2000)
	if math.Abs(p+q-1) > 1e-6 {
		t.Errorf("symmetry broken: %v + %v != 1", p, q)
	}
}

func TestMonotoneInInitialBlue(t *testing.T) {
	c := New(30, 3)
	prev := 1.1
	for _, pb := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		p := c.RedWinProbability(pb, 1000)
		if p > prev+1e-9 {
			t.Fatalf("red win probability not monotone at pBlue=%v", pb)
		}
		prev = p
	}
}

func TestExactMatchesSimulation(t *testing.T) {
	// The exact chain must agree with the simulator on K_n within Monte
	// Carlo error. The general per-vertex engine is forced so this stays a
	// genuine validation: the mean-field fast path samples this chain's own
	// kernel (it is compared separately in engines_test.go).
	const n = 64
	const pBlue = 0.4
	c := New(n, 3)
	exact := c.RedWinProbability(pBlue, 2000)

	const trials = 400
	redWins := 0
	for i := 0; i < trials; i++ {
		src := rng.NewFrom(7, uint64(i))
		init := opinion.RandomConfig(n, pBlue, src)
		p, err := dynamics.New(graph.NewKn(n), dynamics.BestOfThree, init, dynamics.Options{Seed: src.Uint64(), Workers: 1, Engine: dynamics.EngineGeneral})
		if err != nil {
			t.Fatal(err)
		}
		res := p.RunQuiet(2000)
		if res.Consensus && res.Winner == opinion.Red {
			redWins++
		}
	}
	emp := float64(redWins) / trials
	se := math.Sqrt(exact*(1-exact)/trials) + 1e-9
	if math.Abs(emp-exact) > 5*se+0.02 {
		t.Errorf("simulation %v vs exact %v (se %v)", emp, exact, se)
	}
}

func TestMeanRoundsReasonable(t *testing.T) {
	c := New(128, 3)
	res := c.Absorb(c.InitialDistribution(0.35), 1e-12, 2000)
	if res.Escaped > 1e-9 {
		t.Fatalf("escaped mass %v", res.Escaped)
	}
	if res.MeanRounds < 2 || res.MeanRounds > 20 {
		t.Errorf("mean rounds %v implausible for K_128", res.MeanRounds)
	}
}

func TestVoterChainMatchesClassicalWinProbability(t *testing.T) {
	// For the voter model (k = 1) on K_n the martingale argument gives
	// P(blue wins | B_0 = b) = b/n... on a regular graph. The chain with
	// self-exclusion keeps this *approximately*: check within 2%.
	c := New(40, 1)
	res := c.Absorb(c.PointDistribution(10), 1e-10, 200000)
	if res.Escaped > 1e-6 {
		t.Fatalf("voter chain escaped mass %v", res.Escaped)
	}
	if math.Abs(res.BlueWins-0.25) > 0.02 {
		t.Errorf("voter blue-win probability %v, want ~0.25", res.BlueWins)
	}
}

func BenchmarkStepDistribution(b *testing.B) {
	c := New(256, 3)
	pi := c.InitialDistribution(0.4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pi = c.StepDistribution(pi)
	}
}

func BenchmarkAbsorb(b *testing.B) {
	c := New(128, 3)
	pi := c.InitialDistribution(0.4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Absorb(pi, 1e-12, 1000)
	}
}
