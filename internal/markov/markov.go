// Package markov computes exact distributions of the Best-of-Three dynamic
// on the complete graph K_n.
//
// On K_n the number of Blue vertices B_t is itself a Markov chain on
// {0, …, n}: conditional on B_t = b, every vertex updates independently,
// a Red vertex turning Blue with probability β(b) = P(Bin(3, b/(n−1)) ≥ 2)
// and a Blue vertex staying Blue with probability β(b−1)-shifted —
// self-exclusion means a Blue vertex sees b−1 Blue among its n−1
// neighbours. Hence
//
//	B_{t+1} ~ Bin(n−b, pRed(b)) + Bin(b, pBlue(b)) ,
//
// and the full distribution vector can be iterated exactly in O(n²) per
// round using binomial convolutions. This gives exact red-win
// probabilities and consensus-time distributions for small n, against
// which the simulator and the paper's asymptotic predictions are checked
// (experiment E20).
package markov

import (
	"math"

	"repro/internal/stats"
)

// Chain is the exact blue-count chain of Best-of-k on K_n.
type Chain struct {
	n int
	k int
	// rowRed[b] and rowBlue[b] are the per-vertex blue-adoption
	// probabilities given the current blue count b.
	rowRed, rowBlue []float64
}

// New returns the chain for Best-of-k on K_n (odd k; n ≥ 2).
func New(n, k int) *Chain {
	if n < 2 {
		panic("markov: need n >= 2")
	}
	if k < 1 || k%2 == 0 {
		panic("markov: k must be odd (no tie rule in the exact chain)")
	}
	c := &Chain{n: n, k: k, rowRed: make([]float64, n+1), rowBlue: make([]float64, n+1)}
	maj := k/2 + 1
	for b := 0; b <= n; b++ {
		// A Red vertex samples from the other n−1 vertices, of which b are
		// blue; a Blue vertex sees b−1 blues.
		c.rowRed[b] = stats.BinomialTail(k, maj, float64(b)/float64(n-1))
		bb := b - 1
		if bb < 0 {
			bb = 0
		}
		c.rowBlue[b] = stats.BinomialTail(k, maj, float64(bb)/float64(n-1))
	}
	return c
}

// N returns the vertex count.
func (c *Chain) N() int { return c.n }

// StepDistribution advances a distribution over blue counts by one round:
// out[j] = Σ_b pi[b]·P(B' = j | B = b). pi must have length n+1; the
// returned vector is fresh.
func (c *Chain) StepDistribution(pi []float64) []float64 {
	if len(pi) != c.n+1 {
		panic("markov: distribution length mismatch")
	}
	out := make([]float64, c.n+1)
	for b, mass := range pi {
		if mass == 0 {
			continue
		}
		row := c.transitionRow(b)
		for j, p := range row {
			out[j] += mass * p
		}
	}
	return out
}

// transitionRow returns P(B' = · | B = b) as the convolution of
// Bin(n−b, rowRed[b]) and Bin(b, rowBlue[b]).
func (c *Chain) transitionRow(b int) []float64 {
	red := binomialPMF(c.n-b, c.rowRed[b])
	blue := binomialPMF(b, c.rowBlue[b])
	out := make([]float64, c.n+1)
	for i, pi := range red {
		if pi == 0 {
			continue
		}
		for j, pj := range blue {
			out[i+j] += pi * pj
		}
	}
	return out
}

// binomialPMF returns the probability mass function of Bin(n, p) as a
// slice of length n+1, computed by the stable multiplicative recurrence.
func binomialPMF(n int, p float64) []float64 {
	out := make([]float64, n+1)
	if n == 0 {
		out[0] = 1
		return out
	}
	if p <= 0 {
		out[0] = 1
		return out
	}
	if p >= 1 {
		out[n] = 1
		return out
	}
	// Start from the mode's neighbourhood via logs to avoid underflow for
	// large n, then fill multiplicatively in both directions.
	logs := make([]float64, n+1)
	lp, lq := math.Log(p), math.Log1p(-p)
	for k := 0; k <= n; k++ {
		logs[k] = lchoose(n, k) + float64(k)*lp + float64(n-k)*lq
	}
	for k := range out {
		out[k] = math.Exp(logs[k])
	}
	return out
}

func lchoose(n, k int) float64 {
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}

// InitialDistribution returns the exact distribution of the initial blue
// count when every vertex is independently Blue with probability pBlue:
// Bin(n, pBlue).
func (c *Chain) InitialDistribution(pBlue float64) []float64 {
	return binomialPMF(c.n, pBlue)
}

// PointDistribution returns the distribution concentrated at blue count b.
func (c *Chain) PointDistribution(b int) []float64 {
	if b < 0 || b > c.n {
		panic("markov: blue count out of range")
	}
	pi := make([]float64, c.n+1)
	pi[b] = 1
	return pi
}

// Absorption iterates the chain until the probability mass outside the two
// absorbing states {0, n} is below tol (or maxRounds elapses) and reports
// the exact outcome.
type Absorption struct {
	// RedWins is the probability of absorbing at blue count 0.
	RedWins float64
	// BlueWins is the probability of absorbing at blue count n.
	BlueWins float64
	// Escaped is the mass still unabsorbed when iteration stopped.
	Escaped float64
	// MeanRounds is the expected number of rounds to absorption,
	// conditioned on absorbing within the horizon.
	MeanRounds float64
	// Rounds is the number of iterated rounds.
	Rounds int
}

// Absorb runs the chain from the distribution pi.
func (c *Chain) Absorb(pi []float64, tol float64, maxRounds int) Absorption {
	cur := append([]float64(nil), pi...)
	var res Absorption
	// Mass already absorbed at round 0 counts as 0 rounds.
	res.RedWins = cur[0]
	res.BlueWins = cur[c.n]
	absorbedMass := cur[0] + cur[c.n]
	weightedRounds := 0.0
	cur[0], cur[c.n] = 0, 0
	for t := 1; t <= maxRounds; t++ {
		rest := 0.0
		for _, m := range cur {
			rest += m
		}
		if rest < tol {
			break
		}
		cur = c.StepDistribution(cur)
		res.Rounds = t
		// Newly absorbed mass this round.
		res.RedWins += cur[0]
		res.BlueWins += cur[c.n]
		weightedRounds += float64(t) * (cur[0] + cur[c.n])
		absorbedMass += cur[0] + cur[c.n]
		cur[0], cur[c.n] = 0, 0
	}
	for _, m := range cur {
		res.Escaped += m
	}
	if absorbedMass > 0 {
		res.MeanRounds = weightedRounds / absorbedMass
	}
	return res
}

// RedWinProbability is a convenience wrapper: the exact probability that
// Best-of-k on K_n started from i.i.d. P(Blue) = pBlue reaches Red
// consensus (within maxRounds, with tol mass tolerance).
func (c *Chain) RedWinProbability(pBlue float64, maxRounds int) float64 {
	return c.Absorb(c.InitialDistribution(pBlue), 1e-12, maxRounds).RedWins
}
