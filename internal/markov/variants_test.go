package markov

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// variantWinRate runs `trials` independent core.Run trials of the given
// variant on K_n and returns the empirical red-win rate — the full
// cross-layer dispatch path (core.newRunProcess), not a hand-built process,
// so the distributional checks below certify what the wire actually runs.
func variantWinRate(t *testing.T, n int, delta float64, v core.Variant, trials int, seed uint64) float64 {
	t.Helper()
	redWins := 0
	for i := 0; i < trials; i++ {
		rep, err := core.Run(context.Background(), graph.NewKn(n), delta,
			core.Options{Seed: rng.ChildSeed(seed, uint64(i)), MaxRounds: 4000, Variant: v})
		if err != nil {
			t.Fatal(err)
		}
		if rep.RedWon {
			redWins++
		}
	}
	return float64(redWins) / float64(trials)
}

// TestPluralityQ2MatchesExactChain grounds the plurality variant in the
// exact blue-count chain: at q = 2 the q-opinion dynamic collapses to the
// two-party synchronous dynamic (three samples never tie, opinion 0 starts
// with the i.i.d. share 1/2 + δ exactly as Red does), so its empirical
// red-win rate on K_n must sit inside the 99% CI around the exact
// absorption probability — the same acceptance bar the engine seam meets
// in TestEnginesMatchExactChain.
func TestPluralityQ2MatchesExactChain(t *testing.T) {
	const (
		n      = 64
		delta  = 0.1 // share0 = 1/2 + 0.1 → pBlue = 0.4
		trials = 1200
		z99    = 2.576
	)
	chain := New(n, 3)
	exact := chain.RedWinProbability(0.5-delta, 4000)

	got := variantWinRate(t, n, delta, core.Variant{Name: core.VariantPlurality, Q: 2}, trials, 303)
	se := math.Sqrt(exact*(1-exact)/trials) + 1e-9
	if d := math.Abs(got - exact); d > z99*se {
		t.Errorf("plurality q=2 red-win rate %v vs exact %v: |diff| %v > 99%% CI %v", got, exact, d, z99*se)
	}
}

// TestAsyncColourSymmetry checks the sequential dynamic's exact
// distributional invariant: Best-of-Three is colour-symmetric (k = 3 never
// ties, no noise), so at δ = 0 the red-win probability is exactly 1/2 —
// any dispatch bug that biases initialisation or the majority rule shows
// up as a deviation outside the 99% CI.
func TestAsyncColourSymmetry(t *testing.T) {
	const (
		n      = 64
		trials = 1200
		z99    = 2.576
	)
	got := variantWinRate(t, n, 0, core.Variant{Name: core.VariantAsync}, trials, 404)
	se := math.Sqrt(0.25/trials) + 1e-9
	if d := math.Abs(got - 0.5); d > z99*se {
		t.Errorf("async red-win rate at delta 0 = %v: |diff from 1/2| %v > 99%% CI %v", got, d, z99*se)
	}
}

// TestAsyncTracksImbalance: at a clear imbalance the sequential dynamic
// must, like the synchronous one, amplify the majority to near-certain
// victory — the coarse distributional agreement behind E18's "same
// threshold behaviour, different clock" claim.
func TestAsyncTracksImbalance(t *testing.T) {
	const trials = 300
	syncRate := variantWinRate(t, 64, 0.2, core.Variant{}, trials, 505)
	asyncRate := variantWinRate(t, 64, 0.2, core.Variant{Name: core.VariantAsync}, trials, 606)
	if syncRate < 0.9 || asyncRate < 0.9 {
		t.Errorf("at delta 0.2 on K_64: sync red-win rate %v, async %v; both should be near-certain", syncRate, asyncRate)
	}
}
