package markov_test

import (
	"fmt"

	"repro/internal/markov"
)

// The exact red-consensus probability of Best-of-Three on K_64 from an
// i.i.d. start: no simulation, no asymptotics — the blue-count chain is
// iterated to absorption.
func ExampleChain_RedWinProbability() {
	chain := markov.New(64, 3)
	fmt.Printf("P(red wins | pBlue=0.40) = %.4f\n", chain.RedWinProbability(0.40, 2000))
	fmt.Printf("P(red wins | pBlue=0.50) = %.4f\n", chain.RedWinProbability(0.50, 2000))
	// Output:
	// P(red wins | pBlue=0.40) = 0.8865
	// P(red wins | pBlue=0.50) = 0.5000
}

// Absorb reports the full absorption picture, including the exact expected
// number of rounds to consensus.
func ExampleChain_Absorb() {
	chain := markov.New(128, 3)
	res := chain.Absorb(chain.PointDistribution(32), 1e-12, 2000)
	fmt.Printf("red wins %.4f, blue wins %.4f, mean rounds %.2f\n",
		res.RedWins, res.BlueWins, res.MeanRounds)
	// Output:
	// red wins 1.0000, blue wins 0.0000, mean rounds 3.84
}
