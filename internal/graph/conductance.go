package graph

import (
	"math"
	"sort"
)

// ConductanceOf returns the conductance of the vertex set S:
// Φ(S) = cut(S, V∖S) / min(vol(S), vol(V∖S)), where vol is the degree sum.
// Returns +Inf for empty or full S (no cut to speak of).
func (g *Graph) ConductanceOf(set []int) float64 {
	n := g.N()
	inSet := make([]bool, n)
	for _, v := range set {
		if v < 0 || v >= n {
			panic("graph: ConductanceOf vertex out of range")
		}
		inSet[v] = true
	}
	volS, cut := 0, 0
	for v := 0; v < n; v++ {
		if !inSet[v] {
			continue
		}
		volS += g.Degree(v)
		for _, w := range g.Neighbors(v) {
			if !inSet[w] {
				cut++
			}
		}
	}
	volTotal := 2 * g.M()
	volRest := volTotal - volS
	minVol := volS
	if volRest < minVol {
		minVol = volRest
	}
	if minVol == 0 {
		return math.Inf(1)
	}
	return float64(cut) / float64(minVol)
}

// CheegerSweep estimates the graph's conductance by the classical spectral
// sweep cut: compute an approximate second eigenvector of the lazy random
// walk by power iteration, sort the vertices by its entries, and return the
// best conductance among all prefix cuts. By Cheeger's inequality the true
// conductance Φ satisfies Φ ≥ (1 − λ₂)/2 and the sweep cut achieves
// Φ_sweep ≤ √(2(1 − λ₂)), so the returned value brackets the bottleneck
// quality of the graph; the barbell and the two-community SBM expose it
// directly. Returns +Inf for graphs with no valid cut (n < 2) and 1 for
// disconnected graphs' trivial components handled by the caller.
//
// iters is the power-iteration count; 200 suffices for the experiment
// graphs.
func (g *Graph) CheegerSweep(iters int) float64 {
	n := g.N()
	if n < 2 {
		return math.Inf(1)
	}
	// Power iteration identical in spirit to SecondEigenvalue, but keeping
	// the vector.
	totalDeg := 2 * float64(g.M())
	if totalDeg == 0 {
		return math.Inf(1)
	}
	pi := make([]float64, n)
	for v := 0; v < n; v++ {
		pi[v] = float64(g.Degree(v)) / totalDeg
	}
	x := make([]float64, n)
	for v := range x {
		x[v] = math.Sin(float64(v) + 1)
	}
	y := make([]float64, n)
	normalise := func(x []float64) {
		dot := 0.0
		for v := range x {
			dot += pi[v] * x[v]
		}
		norm := 0.0
		for v := range x {
			x[v] -= dot
			norm += pi[v] * x[v] * x[v]
		}
		norm = math.Sqrt(norm)
		if norm > 0 {
			for v := range x {
				x[v] /= norm
			}
		}
	}
	normalise(x)
	for it := 0; it < iters; it++ {
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, w := range g.Neighbors(v) {
				sum += x[w]
			}
			deg := float64(g.Degree(v))
			if deg == 0 {
				y[v] = x[v]
				continue
			}
			y[v] = 0.5*x[v] + 0.5*sum/deg
		}
		x, y = y, x
		normalise(x)
	}

	// Sweep: prefix cuts in eigenvector order.
	order := make([]int, n)
	for v := range order {
		order[v] = v
	}
	sort.Slice(order, func(i, j int) bool { return x[order[i]] < x[order[j]] })

	inSet := make([]bool, n)
	volS, cut := 0, 0
	best := math.Inf(1)
	volTotal := 2 * g.M()
	for i := 0; i < n-1; i++ {
		v := order[i]
		inSet[v] = true
		volS += g.Degree(v)
		// Adding v flips the status of its incident edges.
		for _, w := range g.Neighbors(v) {
			if inSet[w] {
				cut-- // edge now internal
			} else {
				cut++ // edge now crosses
			}
		}
		minVol := volS
		if volTotal-volS < minVol {
			minVol = volTotal - volS
		}
		if minVol > 0 {
			if phi := float64(cut) / float64(minVol); phi < best {
				best = phi
			}
		}
	}
	return best
}
