package graph

import "testing"

func TestKnMatchesComplete(t *testing.T) {
	n := 9
	real := Complete(n)
	virt := NewKn(n)
	if virt.N() != real.N() || virt.M() != real.M() {
		t.Fatalf("Kn sizes: N=%d M=%d", virt.N(), virt.M())
	}
	if virt.MinDegree() != real.MinDegree() {
		t.Errorf("MinDegree = %d", virt.MinDegree())
	}
	for v := 0; v < n; v++ {
		if virt.Degree(v) != real.Degree(v) {
			t.Fatalf("Degree(%d) = %d", v, virt.Degree(v))
		}
		for i := 0; i < n-1; i++ {
			if virt.Neighbor(v, i) != real.Neighbor(v, i) {
				t.Fatalf("Neighbor(%d,%d) = %d, want %d", v, i, virt.Neighbor(v, i), real.Neighbor(v, i))
			}
		}
	}
}

func TestKnNeighborSkipsSelf(t *testing.T) {
	k := NewKn(5)
	for v := 0; v < 5; v++ {
		seen := map[int]bool{}
		for i := 0; i < 4; i++ {
			w := k.Neighbor(v, i)
			if w == v {
				t.Fatalf("Neighbor(%d,%d) returned self", v, i)
			}
			if seen[w] {
				t.Fatalf("Neighbor(%d,%d) duplicated %d", v, i, w)
			}
			seen[w] = true
		}
	}
}

func TestKnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewKn(0) did not panic")
		}
	}()
	NewKn(0)
}

func TestKnName(t *testing.T) {
	if got := NewKn(7).Name(); got != "complete(n=7,virtual)" {
		t.Errorf("Name = %q", got)
	}
}
