package graph

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Complete returns the complete graph K_n. This is the topology studied by
// the bulk of the prior Best-of-k literature ([2], [8] in the paper) and the
// α → 1 extreme of the paper's dense family.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	b.SetName(fmt.Sprintf("complete(n=%d)", n))
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// CompleteBipartite returns K_{a,b} with parts {0..a-1} and {a..a+b-1}.
// Best-of-k does not converge on bipartite graphs under some initial
// conditions (parity oscillation), which makes K_{a,b} a useful negative
// control.
func CompleteBipartite(a, b int) *Graph {
	bld := NewBuilder(a + b)
	bld.SetName(fmt.Sprintf("bipartite(a=%d,b=%d)", a, b))
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			bld.AddEdge(u, v)
		}
	}
	return bld.Build()
}

// Cycle returns the n-cycle (n >= 3), the canonical constant-degree sparse
// graph: Theorem 1's density requirement fails here, so consensus slows to
// polynomial time.
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: Cycle requires n >= 3")
	}
	b := NewBuilder(n)
	b.SetName(fmt.Sprintf("cycle(n=%d)", n))
	for v := 0; v < n; v++ {
		b.AddEdge(v, (v+1)%n)
	}
	return b.Build()
}

// Path returns the path graph on n vertices (n >= 2).
func Path(n int) *Graph {
	if n < 2 {
		panic("graph: Path requires n >= 2")
	}
	b := NewBuilder(n)
	b.SetName(fmt.Sprintf("path(n=%d)", n))
	for v := 0; v+1 < n; v++ {
		b.AddEdge(v, v+1)
	}
	return b.Build()
}

// Star returns the star K_{1,n-1} with centre 0.
func Star(n int) *Graph {
	if n < 2 {
		panic("graph: Star requires n >= 2")
	}
	b := NewBuilder(n)
	b.SetName(fmt.Sprintf("star(n=%d)", n))
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
	}
	return b.Build()
}

// Torus2D returns the rows×cols torus (wrap-around grid), a degree-4 sparse
// baseline. Requires rows, cols >= 3 so that the graph is simple.
func Torus2D(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic("graph: Torus2D requires rows, cols >= 3")
	}
	b := NewBuilder(rows * cols)
	b.SetName(fmt.Sprintf("torus(%dx%d)", rows, cols))
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddEdge(id(r, c), id((r+1)%rows, c))
			b.AddEdge(id(r, c), id(r, (c+1)%cols))
		}
	}
	return b.Build()
}

// Grid2D returns the rows×cols grid without wrap-around.
func Grid2D(rows, cols int) *Graph {
	if rows < 1 || cols < 1 {
		panic("graph: Grid2D requires positive dimensions")
	}
	b := NewBuilder(rows * cols)
	b.SetName(fmt.Sprintf("grid(%dx%d)", rows, cols))
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
		}
	}
	return b.Build()
}

// Hypercube returns the dim-dimensional hypercube on 2^dim vertices, a
// log-degree graph sitting between the paper's dense family and constant-
// degree graphs.
func Hypercube(dim int) *Graph {
	if dim < 1 || dim > 30 {
		panic("graph: Hypercube requires 1 <= dim <= 30")
	}
	n := 1 << dim
	b := NewBuilder(n)
	b.SetName(fmt.Sprintf("hypercube(dim=%d)", dim))
	for v := 0; v < n; v++ {
		for bit := 0; bit < dim; bit++ {
			w := v ^ (1 << bit)
			if v < w {
				b.AddEdge(v, w)
			}
		}
	}
	return b.Build()
}

// Barbell returns two disjoint K_k cliques joined by a single bridge edge:
// a bottleneck graph on which majority information mixes slowly.
func Barbell(k int) *Graph {
	if k < 2 {
		panic("graph: Barbell requires k >= 2")
	}
	b := NewBuilder(2 * k)
	b.SetName(fmt.Sprintf("barbell(k=%d)", k))
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			b.AddEdge(u, v)
			b.AddEdge(k+u, k+v)
		}
	}
	b.AddEdge(k-1, k)
	return b.Build()
}

// Gnp returns an Erdős–Rényi G(n, p) graph. Edge generation uses geometric
// skipping over the (n choose 2) canonical edge slots, so the run time is
// O(n + m) rather than O(n²).
func Gnp(n int, p float64, src *rng.Source) *Graph {
	if p < 0 || p > 1 {
		panic("graph: Gnp requires p in [0,1]")
	}
	b := NewBuilder(n)
	b.SetName(fmt.Sprintf("gnp(n=%d,p=%.4g)", n, p))
	if p == 0 || n < 2 {
		return b.Build()
	}
	if p == 1 {
		return Complete(n)
	}
	total := int64(n) * int64(n-1) / 2
	slotToEdge := func(s int64) (int, int) {
		// Row u occupies slots [u·n − u(u+1)/2 … ) of the upper triangle.
		u := int((2*float64(n) - 1 - math.Sqrt((2*float64(n)-1)*(2*float64(n)-1)-8*float64(s))) / 2)
		// Float rounding can be off by one row; correct exactly.
		rowStart := func(u int64) int64 { return u*int64(n) - u*(u+1)/2 }
		for rowStart(int64(u)+1) <= s {
			u++
		}
		for u > 0 && rowStart(int64(u)) > s {
			u--
		}
		v := int(s-rowStart(int64(u))) + u + 1
		return u, v
	}
	s := int64(-1)
	for {
		s += 1 + int64(src.Geometric(p))
		if s >= total {
			break
		}
		u, v := slotToEdge(s)
		b.AddEdge(u, v)
	}
	return b.Build()
}

// Gnm returns a uniform random graph with exactly m distinct edges.
func Gnm(n, m int, src *rng.Source) *Graph {
	maxM := int64(n) * int64(n-1) / 2
	if int64(m) > maxM || m < 0 {
		panic(fmt.Sprintf("graph: Gnm(n=%d) cannot place %d edges", n, m))
	}
	b := NewBuilder(n)
	b.SetName(fmt.Sprintf("gnm(n=%d,m=%d)", n, m))
	seen := make(map[int64]bool, m)
	for len(seen) < m {
		u := src.Intn(n)
		v := src.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := int64(u)*int64(n) + int64(v)
		if seen[key] {
			continue
		}
		seen[key] = true
		b.AddEdge(u, v)
	}
	return b.Build()
}

// RandomRegular returns a uniform-ish random d-regular simple graph via the
// configuration model: d half-edges ("stubs") per vertex are paired at
// random; pairings that produce self-loops or multi-edges are repaired by
// random edge switches, falling back to full resampling if repair stalls.
// n·d must be even and d < n.
func RandomRegular(n, d int, src *rng.Source) *Graph {
	if d < 0 || d >= n {
		panic(fmt.Sprintf("graph: RandomRegular requires 0 <= d < n, got n=%d d=%d", n, d))
	}
	if n*d%2 != 0 {
		panic("graph: RandomRegular requires n·d even")
	}
	name := fmt.Sprintf("regular(n=%d,d=%d)", n, d)
	if d == 0 {
		b := NewBuilder(n)
		b.SetName(name)
		return b.Build()
	}
	// Dense regime: pairing rarely succeeds for d close to n, but the
	// complement trick keeps generation fast: a (n-1-d)-regular complement
	// is sparse.
	if d > n/2 && n-1-d >= 0 && n*(n-1-d)%2 == 0 {
		comp := RandomRegular(n, n-1-d, src)
		g := complement(comp)
		g.name = name
		return g
	}

	for attempt := 0; ; attempt++ {
		edges, ok := pairStubs(n, d, src)
		if !ok {
			if attempt > 200 {
				panic(fmt.Sprintf("graph: RandomRegular(n=%d,d=%d) failed to converge", n, d))
			}
			continue
		}
		b := NewBuilder(n)
		b.SetName(name)
		for _, e := range edges {
			b.AddEdge(int(e[0]), int(e[1]))
		}
		return b.Build()
	}
}

// pairStubs runs one configuration-model pass followed by switch-based
// repair. It reports failure if repair cannot remove all defects.
func pairStubs(n, d int, src *rng.Source) ([][2]int32, bool) {
	stubs := make([]int32, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs[v*d+i] = int32(v)
		}
	}
	src.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })

	type edge = [2]int32
	edges := make([]edge, 0, n*d/2)
	used := make(map[int64]bool, n*d/2)
	key := func(u, v int32) int64 {
		if u > v {
			u, v = v, u
		}
		return int64(u)*int64(n) + int64(v)
	}
	var bad []edge // self-loops and duplicates to repair
	for i := 0; i < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v || used[key(u, v)] {
			bad = append(bad, edge{u, v})
			continue
		}
		used[key(u, v)] = true
		edges = append(edges, edge{u, v})
	}
	// Repair: switch each bad pair (u,v) with a random good edge (x,y) so
	// that (u,x) and (v,y) are both fresh simple edges.
	maxTries := 100 * (len(bad) + 1) * (d + 1)
	tries := 0
	for len(bad) > 0 {
		if tries++; tries > maxTries {
			return nil, false
		}
		bd := bad[len(bad)-1]
		u, v := bd[0], bd[1]
		i := src.Intn(len(edges))
		x, y := edges[i][0], edges[i][1]
		if src.Bernoulli(0.5) {
			x, y = y, x
		}
		if u == x || v == y || used[key(u, x)] || used[key(v, y)] {
			continue
		}
		delete(used, key(x, y))
		used[key(u, x)] = true
		used[key(v, y)] = true
		edges[i] = edge{u, x}
		edges = append(edges, edge{v, y})
		bad = bad[:len(bad)-1]
	}
	return edges, true
}

// complement returns the complement graph of g (no name set).
func complement(g *Graph) *Graph {
	n := g.N()
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		list := g.Neighbors(u)
		idx := 0
		for v := u + 1; v < n; v++ {
			for idx < len(list) && int(list[idx]) < v {
				idx++
			}
			if idx < len(list) && int(list[idx]) == v {
				continue
			}
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// DenseMinDegree returns a concrete member of the paper's graph class with
// minimum degree d = ceil(n^alpha): a random d-regular graph (so min degree
// is exactly d). It panics unless 0 < alpha <= 1.
func DenseMinDegree(n int, alpha float64, src *rng.Source) *Graph {
	if alpha <= 0 || alpha > 1 {
		panic("graph: DenseMinDegree requires alpha in (0,1]")
	}
	d := int(math.Ceil(math.Pow(float64(n), alpha)))
	if d >= n {
		return Complete(n)
	}
	if (n*d)%2 != 0 {
		d++ // keep n·d even; only increases density
		if d >= n {
			return Complete(n)
		}
	}
	g := RandomRegular(n, d, src)
	g.name = fmt.Sprintf("dense(n=%d,alpha=%.3f,d=%d)", n, alpha, d)
	return g
}

// SBM returns a two-block stochastic block model: blocks of sizes a and b,
// within-block edge probability pin and across-block probability pout.
// Used by the social-polling example: two communities with different
// internal densities.
func SBM(a, b int, pin, pout float64, src *rng.Source) *Graph {
	if pin < 0 || pin > 1 || pout < 0 || pout > 1 {
		panic("graph: SBM probabilities must lie in [0,1]")
	}
	n := a + b
	bld := NewBuilder(n)
	bld.SetName(fmt.Sprintf("sbm(a=%d,b=%d,pin=%.3g,pout=%.3g)", a, b, pin, pout))
	addBlock := func(lo, hi int, p float64) {
		if p <= 0 {
			return
		}
		for u := lo; u < hi; u++ {
			v := u
			for {
				skip := 1
				if p < 1 {
					skip = 1 + src.Geometric(p)
				}
				v += skip
				if v >= hi {
					break
				}
				bld.AddEdge(u, v)
			}
		}
	}
	addBlock(0, a, pin)
	addBlock(a, n, pin)
	if pout > 0 {
		for u := 0; u < a; u++ {
			v := a - 1
			for {
				skip := 1
				if pout < 1 {
					skip = 1 + src.Geometric(pout)
				}
				v += skip
				if v >= n {
					break
				}
				bld.AddEdge(u, v)
			}
		}
	}
	return bld.Build()
}

// ChungLu returns a Chung–Lu random graph with expected degree sequence
// w[i]: edge {u,v} appears independently with probability
// min(1, w_u·w_v / Σw). This produces graphs with a prescribed degree
// profile, the setting of Abdullah–Draief [1] that the paper compares
// against.
func ChungLu(weights []float64, src *rng.Source) *Graph {
	n := len(weights)
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("graph: ChungLu requires non-negative weights")
		}
		total += w
	}
	b := NewBuilder(n)
	b.SetName(fmt.Sprintf("chunglu(n=%d)", n))
	if total == 0 {
		return b.Build()
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := weights[u] * weights[v] / total
			if p > 1 {
				p = 1
			}
			if src.Bernoulli(p) {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// WattsStrogatz returns a small-world graph: a ring lattice where every
// vertex connects to its k nearest neighbours on each side, with each
// lattice edge independently rewired to a uniform random endpoint with
// probability beta (avoiding self-loops and duplicates; unrewirable edges
// stay in place). beta = 0 is the ring lattice, beta = 1 approaches a
// random graph. The small-world regime sits between the paper's dense
// class and the constant-degree counterexamples, making it a useful probe
// for the density-gate experiments.
func WattsStrogatz(n, k int, beta float64, src *rng.Source) *Graph {
	if k < 1 || 2*k >= n {
		panic(fmt.Sprintf("graph: WattsStrogatz requires 1 <= k < n/2, got n=%d k=%d", n, k))
	}
	if beta < 0 || beta > 1 {
		panic("graph: WattsStrogatz requires beta in [0,1]")
	}
	type edge = [2]int32
	edges := make([]edge, 0, n*k)
	used := make(map[int64]bool, n*k)
	key := func(u, v int32) int64 {
		if u > v {
			u, v = v, u
		}
		return int64(u)*int64(n) + int64(v)
	}
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			u, w := int32(v), int32((v+j)%n)
			edges = append(edges, edge{u, w})
			used[key(u, w)] = true
		}
	}
	for i := range edges {
		if !src.Bernoulli(beta) {
			continue
		}
		u := edges[i][0]
		// Try a handful of random endpoints; keep the lattice edge if the
		// vertex is saturated (dense small k makes failure vanishing).
		for attempt := 0; attempt < 32; attempt++ {
			w := int32(src.Intn(n))
			if w == u || used[key(u, w)] {
				continue
			}
			delete(used, key(edges[i][0], edges[i][1]))
			used[key(u, w)] = true
			edges[i][1] = w
			break
		}
	}
	b := NewBuilder(n)
	b.SetName(fmt.Sprintf("wattsstrogatz(n=%d,k=%d,beta=%.3g)", n, k, beta))
	for _, e := range edges {
		b.AddEdge(int(e[0]), int(e[1]))
	}
	return b.Build()
}

// PowerLawWeights returns n Chung–Lu weights following a power law with
// exponent gamma, scaled so the minimum weight is wmin.
func PowerLawWeights(n int, gamma, wmin float64) []float64 {
	if gamma <= 1 {
		panic("graph: PowerLawWeights requires gamma > 1")
	}
	w := make([]float64, n)
	for i := range w {
		// Inverse-CDF of a Pareto distribution evaluated on a regular grid
		// gives a deterministic, reproducible weight profile.
		u := (float64(i) + 0.5) / float64(n)
		w[i] = wmin * math.Pow(u, -1/(gamma-1))
	}
	return w
}

// BinaryTree returns the complete binary tree of the given depth (depth 0
// is a single vertex). Vertex 0 is the root; vertex v has children 2v+1
// and 2v+2. Trees have no cycles and constant average degree, making them
// a worst-case-style sparse control for the dynamics experiments.
func BinaryTree(depth int) *Graph {
	if depth < 0 || depth > 30 {
		panic("graph: BinaryTree requires 0 <= depth <= 30")
	}
	n := 1<<(depth+1) - 1
	b := NewBuilder(n)
	b.SetName(fmt.Sprintf("binarytree(depth=%d)", depth))
	for v := 0; 2*v+2 < n; v++ {
		b.AddEdge(v, 2*v+1)
		b.AddEdge(v, 2*v+2)
	}
	return b.Build()
}

// Lollipop returns the lollipop graph: a clique K_k joined to a path of
// pathLen vertices. The classic worst case for random-walk hitting times;
// here it serves as a conductance-bottleneck control.
func Lollipop(k, pathLen int) *Graph {
	if k < 2 || pathLen < 1 {
		panic("graph: Lollipop requires k >= 2 and pathLen >= 1")
	}
	n := k + pathLen
	b := NewBuilder(n)
	b.SetName(fmt.Sprintf("lollipop(k=%d,path=%d)", k, pathLen))
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			b.AddEdge(u, v)
		}
	}
	for v := k - 1; v+1 < n; v++ {
		b.AddEdge(v, v+1)
	}
	return b.Build()
}
