package graph

import "math"

// BFS returns the distance (in edges) from src to every vertex, with -1 for
// unreachable vertices.
func (g *Graph) BFS(src int) []int {
	n := g.N()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= n {
		return dist
	}
	dist[src] = 0
	queue := make([]int32, 0, n)
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		v := int(queue[0])
		queue = queue[1:]
		for _, w := range g.Neighbors(v) {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// IsConnected reports whether the graph is connected. The empty graph and
// the single-vertex graph count as connected.
func (g *Graph) IsConnected() bool {
	n := g.N()
	if n <= 1 {
		return true
	}
	for _, d := range g.BFS(0) {
		if d == -1 {
			return false
		}
	}
	return true
}

// Components returns the connected components as vertex lists, ordered by
// smallest contained vertex.
func (g *Graph) Components() [][]int {
	n := g.N()
	seen := make([]bool, n)
	var comps [][]int
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, w := range g.Neighbors(v) {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, int(w))
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// IsBipartite reports whether the graph is bipartite (2-colourable).
// Best-of-k dynamics can oscillate forever on bipartite graphs, so
// experiment setup checks this.
func (g *Graph) IsBipartite() bool {
	n := g.N()
	colour := make([]int8, n) // 0 = unvisited, ±1 = the two sides
	for s := 0; s < n; s++ {
		if colour[s] != 0 {
			continue
		}
		colour[s] = 1
		stack := []int{s}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(v) {
				if colour[w] == 0 {
					colour[w] = -colour[v]
					stack = append(stack, int(w))
				} else if colour[w] == colour[v] {
					return false
				}
			}
		}
	}
	return true
}

// Diameter returns the exact diameter by running BFS from every vertex.
// O(n·m); intended for the small graphs used in tests and examples. It
// returns -1 for disconnected graphs and 0 for graphs with fewer than two
// vertices.
func (g *Graph) Diameter() int {
	n := g.N()
	if n < 2 {
		return 0
	}
	diam := 0
	for v := 0; v < n; v++ {
		for _, d := range g.BFS(v) {
			if d == -1 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// SecondEigenvalue estimates λ₂, the second-largest *absolute* eigenvalue of
// the lazy transition matrix P' = (I + D⁻¹A)/2, by power iteration on the
// component orthogonal to the stationary distribution. The lazy walk makes
// the spectrum non-negative so the estimate is also a bound for |λ_n|
// asymmetries. This connects the repository to the spectral condition
// d(R₀) − d(B₀) ≥ 4λ₂·d(V) of Cooper et al. [5], which the paper contrasts
// with its own density condition.
//
// iters controls the number of power iterations; 200 is plenty for the
// experiment graphs. Returns 1 for disconnected or bipartite-degenerate
// inputs where the walk does not mix.
func (g *Graph) SecondEigenvalue(iters int) float64 {
	n := g.N()
	if n < 2 {
		return 0
	}
	if !g.IsConnected() {
		return 1
	}
	// Stationary distribution of the random walk: π(v) ∝ deg(v).
	totalDeg := 2 * float64(g.M())
	if totalDeg == 0 {
		return 1
	}
	pi := make([]float64, n)
	for v := 0; v < n; v++ {
		pi[v] = float64(g.Degree(v)) / totalDeg
	}
	// Start from a deterministic vector orthogonal to 1 in the π-inner
	// product.
	x := make([]float64, n)
	for v := range x {
		x[v] = math.Sin(float64(v) + 1)
	}
	y := make([]float64, n)
	projectAndNormalise := func(x []float64) float64 {
		dot := 0.0
		for v := range x {
			dot += pi[v] * x[v]
		}
		norm := 0.0
		for v := range x {
			x[v] -= dot
			norm += pi[v] * x[v] * x[v]
		}
		norm = math.Sqrt(norm)
		if norm > 0 {
			for v := range x {
				x[v] /= norm
			}
		}
		return norm
	}
	projectAndNormalise(x)
	lambda := 1.0
	for it := 0; it < iters; it++ {
		// y = P'x with P' = (I + D⁻¹A)/2.
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, w := range g.Neighbors(v) {
				sum += x[w]
			}
			deg := float64(g.Degree(v))
			if deg == 0 {
				y[v] = x[v]
				continue
			}
			y[v] = 0.5*x[v] + 0.5*sum/deg
		}
		x, y = y, x
		lambda = projectAndNormalise(x)
	}
	// λ₂ of the lazy walk is (1 + λ₂(P))/2; undo the lazification to report
	// the eigenvalue of the plain transition matrix, clamped to [0, 1].
	plain := 2*lambda - 1
	if plain < 0 {
		plain = 0
	}
	if plain > 1 {
		plain = 1
	}
	return plain
}

// DegreeSum returns Σ_{v ∈ set} deg(v), the d(X) quantity from the spectral
// condition of [5].
func (g *Graph) DegreeSum(set []int) int {
	sum := 0
	for _, v := range set {
		sum += g.Degree(v)
	}
	return sum
}
