package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.N() != 0 || g.M() != 0 {
		t.Errorf("empty graph: N=%d M=%d", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	if !g.IsConnected() {
		t.Error("empty graph should count as connected")
	}
	if g.MinDegree() != 0 || g.MaxDegree() != 0 || g.AvgDegree() != 0 {
		t.Error("empty graph degree stats should be zero")
	}
}

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	g := b.Build()
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("N=%d M=%d, want 4, 4", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{0, 1, 2, 3} {
		if g.Degree(v) != 2 {
			t.Errorf("Degree(%d) = %d, want 2", v, g.Degree(v))
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge (0,1) missing")
	}
	if g.HasEdge(0, 2) {
		t.Error("phantom edge (0,2)")
	}
}

func TestBuilderDeduplicates(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(0, 1)
	g := b.Build()
	if g.M() != 1 {
		t.Errorf("M = %d after duplicate AddEdge, want 1", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBuilderPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative n":   func() { NewBuilder(-1) },
		"self-loop":    func() { NewBuilder(2).AddEdge(1, 1) },
		"out of range": func() { NewBuilder(2).AddEdge(0, 2) },
		"negative u":   func() { NewBuilder(2).AddEdge(-1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestNeighborAccessor(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 2}, {0, 1}, {0, 3}}, "star4")
	if g.Degree(0) != 3 {
		t.Fatalf("Degree(0) = %d", g.Degree(0))
	}
	// Sorted adjacency: neighbours of 0 are 1, 2, 3 in order.
	for i, want := range []int{1, 2, 3} {
		if got := g.Neighbor(0, i); got != want {
			t.Errorf("Neighbor(0,%d) = %d, want %d", i, got, want)
		}
	}
}

func TestComplete(t *testing.T) {
	g := Complete(10)
	if g.N() != 10 || g.M() != 45 {
		t.Fatalf("K10: N=%d M=%d", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.MinDegree() != 9 || g.MaxDegree() != 9 {
		t.Error("K10 should be 9-regular")
	}
	if g.Diameter() != 1 {
		t.Errorf("K10 diameter = %d", g.Diameter())
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(3, 4)
	if g.N() != 7 || g.M() != 12 {
		t.Fatalf("K(3,4): N=%d M=%d", g.N(), g.M())
	}
	if !g.IsBipartite() {
		t.Error("K(3,4) not detected as bipartite")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(12)
	if g.M() != 12 {
		t.Errorf("C12: M = %d", g.M())
	}
	if g.MinDegree() != 2 || g.MaxDegree() != 2 {
		t.Error("cycle should be 2-regular")
	}
	if g.Diameter() != 6 {
		t.Errorf("C12 diameter = %d, want 6", g.Diameter())
	}
	if !Cycle(12).IsBipartite() {
		t.Error("even cycle should be bipartite")
	}
	if Cycle(11).IsBipartite() {
		t.Error("odd cycle should not be bipartite")
	}
}

func TestPathStar(t *testing.T) {
	p := Path(5)
	if p.M() != 4 || p.Diameter() != 4 {
		t.Errorf("P5: M=%d diam=%d", p.M(), p.Diameter())
	}
	s := Star(6)
	if s.M() != 5 || s.Degree(0) != 5 || s.Diameter() != 2 {
		t.Errorf("star: M=%d deg0=%d diam=%d", s.M(), s.Degree(0), s.Diameter())
	}
}

func TestTorusGrid(t *testing.T) {
	tor := Torus2D(4, 5)
	if tor.N() != 20 || tor.MinDegree() != 4 || tor.MaxDegree() != 4 {
		t.Errorf("torus: N=%d min=%d max=%d", tor.N(), tor.MinDegree(), tor.MaxDegree())
	}
	if err := tor.Validate(); err != nil {
		t.Fatal(err)
	}
	gr := Grid2D(3, 3)
	if gr.M() != 12 {
		t.Errorf("3x3 grid: M = %d, want 12", gr.M())
	}
	if gr.Degree(4) != 4 { // centre vertex
		t.Errorf("grid centre degree = %d", gr.Degree(4))
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("Q4: N=%d M=%d", g.N(), g.M())
	}
	if g.MinDegree() != 4 || g.MaxDegree() != 4 {
		t.Error("Q4 should be 4-regular")
	}
	if g.Diameter() != 4 {
		t.Errorf("Q4 diameter = %d", g.Diameter())
	}
	if !g.IsBipartite() {
		t.Error("hypercube should be bipartite")
	}
}

func TestBarbell(t *testing.T) {
	g := Barbell(5)
	if g.N() != 10 {
		t.Fatalf("barbell N = %d", g.N())
	}
	if g.M() != 2*10+1 {
		t.Errorf("barbell(5) M = %d, want 21", g.M())
	}
	if !g.IsConnected() {
		t.Error("barbell should be connected")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGnpEdgeCount(t *testing.T) {
	src := rng.New(1)
	n, p := 500, 0.05
	g := Gnp(n, p, src)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	want := p * float64(n) * float64(n-1) / 2
	got := float64(g.M())
	if got < want*0.85 || got > want*1.15 {
		t.Errorf("Gnp(%d, %v): M = %v, want ~%v", n, p, got, want)
	}
}

func TestGnpExtremes(t *testing.T) {
	src := rng.New(2)
	if g := Gnp(100, 0, src); g.M() != 0 {
		t.Errorf("Gnp(p=0) has %d edges", g.M())
	}
	if g := Gnp(50, 1, src); g.M() != 50*49/2 {
		t.Errorf("Gnp(p=1) has %d edges, want %d", g.M(), 50*49/2)
	}
	if g := Gnp(1, 0.5, src); g.N() != 1 || g.M() != 0 {
		t.Error("Gnp(n=1) wrong")
	}
}

func TestGnpPanicsOnBadP(t *testing.T) {
	for _, p := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Gnp(p=%v) did not panic", p)
				}
			}()
			Gnp(10, p, rng.New(1))
		}()
	}
}

func TestGnm(t *testing.T) {
	src := rng.New(3)
	g := Gnm(100, 250, src)
	if g.M() != 250 {
		t.Errorf("Gnm M = %d, want 250", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	full := Gnm(10, 45, src)
	if full.M() != 45 {
		t.Errorf("Gnm full graph M = %d", full.M())
	}
}

func TestGnmPanicsWhenOverfull(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gnm with too many edges did not panic")
		}
	}()
	Gnm(5, 11, rng.New(1))
}

func TestRandomRegular(t *testing.T) {
	src := rng.New(4)
	for _, c := range []struct{ n, d int }{
		{10, 3}, {50, 4}, {100, 7}, {64, 16}, {31, 30}, {200, 2},
	} {
		g := RandomRegular(c.n, c.d, src)
		if err := g.Validate(); err != nil {
			t.Fatalf("regular(n=%d,d=%d): %v", c.n, c.d, err)
		}
		for v := 0; v < c.n; v++ {
			if g.Degree(v) != c.d {
				t.Fatalf("regular(n=%d,d=%d): Degree(%d) = %d", c.n, c.d, v, g.Degree(v))
			}
		}
	}
}

func TestRandomRegularDense(t *testing.T) {
	// d > n/2 goes through the complement path.
	src := rng.New(5)
	g := RandomRegular(20, 15, src)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 20; v++ {
		if g.Degree(v) != 15 {
			t.Fatalf("Degree(%d) = %d, want 15", v, g.Degree(v))
		}
	}
}

func TestRandomRegularZeroDegree(t *testing.T) {
	g := RandomRegular(10, 0, rng.New(6))
	if g.M() != 0 {
		t.Errorf("0-regular graph has %d edges", g.M())
	}
}

func TestRandomRegularPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"odd nd": func() { RandomRegular(5, 3, rng.New(1)) },
		"d >= n": func() { RandomRegular(5, 5, rng.New(1)) },
		"neg d":  func() { RandomRegular(5, -1, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDenseMinDegree(t *testing.T) {
	src := rng.New(7)
	g := DenseMinDegree(256, 0.5, src)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.MinDegree() < 16 {
		t.Errorf("dense(alpha=0.5, n=256): min degree %d < 16", g.MinDegree())
	}
	exp := g.DensityExponent()
	if exp < 0.45 || exp > 0.65 {
		t.Errorf("density exponent = %v, want ~0.5", exp)
	}
	// alpha = 1 must yield the complete graph.
	k := DenseMinDegree(20, 1, src)
	if k.M() != 20*19/2 {
		t.Errorf("alpha=1: M = %d, want complete", k.M())
	}
}

func TestSBM(t *testing.T) {
	src := rng.New(8)
	g := SBM(200, 200, 0.2, 0.01, src)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	in, out := 0, 0
	for u := 0; u < g.N(); u++ {
		for _, w := range g.Neighbors(u) {
			if (u < 200) == (int(w) < 200) {
				in++
			} else {
				out++
			}
		}
	}
	in, out = in/2, out/2
	wantIn := 0.2 * 2 * float64(200*199/2)
	wantOut := 0.01 * 200 * 200
	if float64(in) < wantIn*0.8 || float64(in) > wantIn*1.2 {
		t.Errorf("SBM within-block edges = %d, want ~%.0f", in, wantIn)
	}
	if float64(out) < wantOut*0.5 || float64(out) > wantOut*1.6 {
		t.Errorf("SBM cross-block edges = %d, want ~%.0f", out, wantOut)
	}
}

func TestChungLu(t *testing.T) {
	src := rng.New(9)
	w := PowerLawWeights(300, 2.5, 3)
	g := ChungLu(w, src)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.M() == 0 {
		t.Error("ChungLu produced no edges")
	}
	// Vertices with larger weight should have larger degree on average:
	// compare the top and bottom weight deciles.
	hi, lo := 0, 0
	for v := 0; v < 30; v++ {
		hi += g.Degree(v) // PowerLawWeights is decreasing in i? (check direction)
	}
	for v := 270; v < 300; v++ {
		lo += g.Degree(v)
	}
	// weights[0] corresponds to u≈0 → largest weight.
	if hi <= lo {
		t.Errorf("ChungLu degree ordering: top-decile sum %d <= bottom %d", hi, lo)
	}
}

func TestChungLuPanicsOnNegativeWeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative weight did not panic")
		}
	}()
	ChungLu([]float64{1, -1}, rng.New(1))
}

func TestBFSDistances(t *testing.T) {
	g := Path(5)
	d := g.BFS(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Errorf("BFS dist[%d] = %d, want %d", i, d[i], want)
		}
	}
	// Disconnected: two components.
	g2 := FromEdges(4, [][2]int{{0, 1}, {2, 3}}, "2k2")
	d2 := g2.BFS(0)
	if d2[2] != -1 || d2[3] != -1 {
		t.Error("BFS reached disconnected component")
	}
	if g2.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
	if comps := g2.Components(); len(comps) != 2 {
		t.Errorf("Components = %v", comps)
	}
}

func TestBFSOutOfRangeSource(t *testing.T) {
	g := Path(3)
	d := g.BFS(-1)
	for _, v := range d {
		if v != -1 {
			t.Error("BFS from invalid source should mark all unreachable")
		}
	}
}

func TestDiameterDisconnected(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 1}}, "frag")
	if g.Diameter() != -1 {
		t.Errorf("disconnected diameter = %d, want -1", g.Diameter())
	}
}

func TestSecondEigenvalueComplete(t *testing.T) {
	// For K_n the transition matrix has second eigenvalue 1/(n-1)... in
	// absolute value. For n = 20: 1/19 ≈ 0.0526.
	g := Complete(20)
	l2 := g.SecondEigenvalue(300)
	if l2 > 0.12 {
		t.Errorf("K20 second eigenvalue = %v, want ~0.05", l2)
	}
}

func TestSecondEigenvalueCycle(t *testing.T) {
	// For C_n the second eigenvalue is cos(2π/n), close to 1 for large n.
	g := Cycle(64)
	l2 := g.SecondEigenvalue(400)
	if l2 < 0.9 {
		t.Errorf("C64 second eigenvalue = %v, want ~0.995", l2)
	}
}

func TestSecondEigenvalueDisconnected(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 1}, {2, 3}}, "2k2")
	if l2 := g.SecondEigenvalue(50); l2 != 1 {
		t.Errorf("disconnected second eigenvalue = %v, want 1", l2)
	}
}

func TestDegreeSum(t *testing.T) {
	g := Star(5)
	if s := g.DegreeSum([]int{0}); s != 4 {
		t.Errorf("DegreeSum(centre) = %d", s)
	}
	if s := g.DegreeSum([]int{1, 2, 3, 4}); s != 4 {
		t.Errorf("DegreeSum(leaves) = %d", s)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := Star(5)
	h := g.DegreeHistogram()
	if h[4] != 1 || h[1] != 4 {
		t.Errorf("star degree histogram = %v", h)
	}
}

func TestNameFormats(t *testing.T) {
	if got := Complete(5).Name(); got != "complete(n=5)" {
		t.Errorf("Name = %q", got)
	}
	unnamed := NewBuilder(3).Build()
	if got := unnamed.Name(); got == "" {
		t.Error("unnamed graph has empty Name")
	}
}

// Property: every generated Gnp graph validates and has edges within range.
func TestQuickGnpValid(t *testing.T) {
	f := func(seed uint64, nRaw uint8, pRaw uint8) bool {
		n := int(nRaw)%200 + 2
		p := float64(pRaw) / 255
		g := Gnp(n, p, rng.New(seed))
		return g.Validate() == nil && g.M() <= n*(n-1)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: RandomRegular always yields a validating d-regular graph.
func TestQuickRandomRegularValid(t *testing.T) {
	f := func(seed uint64, nRaw, dRaw uint8) bool {
		n := int(nRaw)%60 + 4
		d := int(dRaw) % n
		if n*d%2 != 0 {
			d--
		}
		if d < 0 {
			d = 0
		}
		g := RandomRegular(n, d, rng.New(seed))
		if g.Validate() != nil {
			return false
		}
		for v := 0; v < n; v++ {
			if g.Degree(v) != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: complement of complement (via dense RandomRegular path) keeps
// regularity — indirectly covered; here check handshake invariant instead:
// sum of degrees is 2M for arbitrary built graphs.
func TestQuickHandshake(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%100 + 2
		g := Gnp(n, 0.3, rng.New(seed))
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGnpGenerate(b *testing.B) {
	src := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Gnp(2000, 0.05, src)
	}
}

func BenchmarkRandomRegularGenerate(b *testing.B) {
	src := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RandomRegular(2000, 16, src)
	}
}

func BenchmarkNeighborAccess(b *testing.B) {
	g := RandomRegular(4096, 64, rng.New(1))
	src := rng.New(2)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		v := i & 4095
		sink += g.Neighbor(v, src.Intn(g.Degree(v)))
	}
	_ = sink
}

func TestWattsStrogatzLattice(t *testing.T) {
	// beta = 0: the pure ring lattice, 2k-regular.
	g := WattsStrogatz(50, 3, 0, rng.New(20))
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.M() != 50*3 {
		t.Errorf("lattice M = %d, want 150", g.M())
	}
	for v := 0; v < 50; v++ {
		if g.Degree(v) != 6 {
			t.Fatalf("lattice Degree(%d) = %d, want 6", v, g.Degree(v))
		}
	}
	if !g.IsConnected() {
		t.Error("ring lattice disconnected")
	}
}

func TestWattsStrogatzRewiringShrinksDiameter(t *testing.T) {
	lattice := WattsStrogatz(200, 2, 0, rng.New(21))
	small := WattsStrogatz(200, 2, 0.2, rng.New(21))
	if err := small.Validate(); err != nil {
		t.Fatal(err)
	}
	if small.M() != lattice.M() {
		t.Errorf("rewiring changed edge count: %d vs %d", small.M(), lattice.M())
	}
	if !small.IsConnected() {
		t.Skip("rewired instance disconnected; rare but possible")
	}
	if dl, ds := lattice.Diameter(), small.Diameter(); ds >= dl {
		t.Errorf("rewiring did not shrink diameter: %d -> %d", dl, ds)
	}
}

func TestWattsStrogatzPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"k zero":    func() { WattsStrogatz(10, 0, 0.1, rng.New(1)) },
		"k too big": func() { WattsStrogatz(10, 5, 0.1, rng.New(1)) },
		"bad beta":  func() { WattsStrogatz(10, 2, 1.5, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBinaryTree(t *testing.T) {
	g := BinaryTree(3)
	if g.N() != 15 || g.M() != 14 {
		t.Fatalf("depth-3 tree: N=%d M=%d", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() || !g.IsBipartite() {
		t.Error("tree must be connected and bipartite")
	}
	if g.Degree(0) != 2 {
		t.Errorf("root degree = %d", g.Degree(0))
	}
	if g.Degree(14) != 1 {
		t.Errorf("leaf degree = %d", g.Degree(14))
	}
	single := BinaryTree(0)
	if single.N() != 1 || single.M() != 0 {
		t.Error("depth-0 tree wrong")
	}
}

func TestBinaryTreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative depth did not panic")
		}
	}()
	BinaryTree(-1)
}

func TestLollipop(t *testing.T) {
	g := Lollipop(5, 4)
	if g.N() != 9 {
		t.Fatalf("N = %d", g.N())
	}
	if g.M() != 5*4/2+4 {
		t.Errorf("M = %d, want 14", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Error("lollipop disconnected")
	}
	// The path end has degree 1; clique interior vertices have degree 4.
	if g.Degree(8) != 1 || g.Degree(0) != 4 {
		t.Errorf("degrees: end=%d clique=%d", g.Degree(8), g.Degree(0))
	}
	// The junction vertex belongs to both parts.
	if g.Degree(4) != 5 {
		t.Errorf("junction degree = %d, want 5", g.Degree(4))
	}
}

func TestLollipopPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"small clique": func() { Lollipop(1, 3) },
		"no path":      func() { Lollipop(4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestGnpEdgeInclusionUniform(t *testing.T) {
	// Each of the 10 edge slots of K5 must appear with frequency ~p: the
	// geometric-skipping enumeration must not favour early or late slots.
	const n, p, trials = 5, 0.3, 20000
	counts := make(map[[2]int]int)
	src := rng.New(33)
	for i := 0; i < trials; i++ {
		g := Gnp(n, p, src)
		for u := 0; u < n; u++ {
			for _, w := range g.Neighbors(u) {
				if u < int(w) {
					counts[[2]int{u, int(w)}]++
				}
			}
		}
	}
	if len(counts) != 10 {
		t.Fatalf("only %d distinct slots seen", len(counts))
	}
	for e, c := range counts {
		freq := float64(c) / trials
		if freq < p-0.02 || freq > p+0.02 {
			t.Errorf("edge %v frequency %.4f, want ~%.2f", e, freq, p)
		}
	}
}

// TestNewCSRRejectsMalformedOffsets: NewCSR must return errors — never
// panic — on offsets arrays that pass the endpoint checks but are not
// valid slice bounds. The [0, 100, 0] case is the regression: with empty
// adjacency it satisfies offsets[0]==0 and offsets[n]==len(adj), and a
// pairwise monotonicity check interleaved with slicing would panic on
// adj[0:100] before reaching the non-monotone pair.
func TestNewCSRRejectsMalformedOffsets(t *testing.T) {
	cases := []struct {
		name    string
		offsets []int32
		adj     []int32
	}{
		{"spike-then-drop", []int32{0, 100, 0}, nil},
		{"negative-dip", []int32{0, -4, 0}, nil},
		{"spike-past-adj", []int32{0, 100, 2}, []int32{1, 0}},
		{"bad-first", []int32{3, 2}, []int32{1, 0}},
		{"bad-last", []int32{0, 5}, []int32{1, 0}},
		{"adj-without-offsets", nil, []int32{1, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("NewCSR panicked: %v", r)
				}
			}()
			if _, err := NewCSR(tc.offsets, tc.adj, "bad"); err == nil {
				t.Fatal("NewCSR accepted malformed CSR arrays")
			}
		})
	}
}

// TestNewCSRValid: well-formed CSR arrays round-trip through NewCSR with
// the adopted storage intact (a path graph 0-1-2).
func TestNewCSRValid(t *testing.T) {
	g, err := NewCSR([]int32{0, 1, 3, 4}, []int32{1, 0, 2, 1}, "path3")
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("N=%d M=%d, want 3/2", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
