package graph

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestConductanceOfKnownCuts(t *testing.T) {
	// Barbell(4): the bridge cut has 1 crossing edge; each side's volume is
	// 4·3 + 1 = 13 (three clique vertices of degree 3, the junction has 4).
	g := Barbell(4)
	phi := g.ConductanceOf([]int{0, 1, 2, 3})
	if math.Abs(phi-1.0/13) > 1e-12 {
		t.Errorf("barbell bridge conductance = %v, want 1/13", phi)
	}
	// K4: any single vertex has cut 3, volume 3: conductance 1.
	k := Complete(4)
	if got := k.ConductanceOf([]int{0}); math.Abs(got-1) > 1e-12 {
		t.Errorf("K4 singleton conductance = %v", got)
	}
}

func TestConductanceOfDegenerate(t *testing.T) {
	g := Complete(4)
	if !math.IsInf(g.ConductanceOf(nil), 1) {
		t.Error("empty set should have infinite conductance")
	}
	if !math.IsInf(g.ConductanceOf([]int{0, 1, 2, 3}), 1) {
		t.Error("full set should have infinite conductance")
	}
}

func TestConductanceOfPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range vertex did not panic")
		}
	}()
	Complete(3).ConductanceOf([]int{5})
}

func TestCheegerSweepFindsBarbellBottleneck(t *testing.T) {
	// The sweep cut must locate the bridge: conductance ~1/(k(k-1)+1).
	g := Barbell(8)
	phi := g.CheegerSweep(300)
	want := 1.0 / (8*7 + 1)
	if phi > 2*want {
		t.Errorf("barbell sweep conductance = %v, want ≈ %v", phi, want)
	}
}

func TestCheegerSweepExpanderIsLarge(t *testing.T) {
	// A random 8-regular graph is an expander: conductance bounded well
	// away from 0.
	g := RandomRegular(256, 8, rng.New(5))
	phi := g.CheegerSweep(300)
	if phi < 0.1 {
		t.Errorf("expander sweep conductance = %v, suspiciously small", phi)
	}
}

func TestCheegerSweepRespectsCheegerInequality(t *testing.T) {
	// Φ_sweep ≥ (1 − λ₂)/2 must hold for any cut, in particular the sweep's.
	for _, g := range []*Graph{Barbell(6), Cycle(40), RandomRegular(128, 6, rng.New(6))} {
		l2 := g.SecondEigenvalue(300)
		phi := g.CheegerSweep(300)
		if phi < (1-l2)/2-1e-6 {
			t.Errorf("%s: sweep conductance %v below Cheeger lower bound %v", g.Name(), phi, (1-l2)/2)
		}
	}
}

func TestCheegerSweepSBMSplitsCommunities(t *testing.T) {
	// Two dense blocks with few cross edges: the sweep should find a cut of
	// conductance roughly pout/(pin + pout) scale, far below an expander's.
	g := SBM(100, 100, 0.3, 0.005, rng.New(7))
	phi := g.CheegerSweep(300)
	if phi > 0.1 {
		t.Errorf("SBM sweep conductance = %v, want a small community cut", phi)
	}
}

func TestCheegerSweepTiny(t *testing.T) {
	if !math.IsInf(NewBuilder(1).Build().CheegerSweep(10), 1) {
		t.Error("single-vertex sweep should be infinite")
	}
}
