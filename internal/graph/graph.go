// Package graph provides the graph substrate for the voting-dynamics
// simulators: an immutable compressed-sparse-row (CSR) adjacency
// representation, a mutable builder, a library of generators covering the
// graph families discussed in the paper (dense minimum-degree families,
// random regular graphs, Erdős–Rényi graphs, the complete graph, sparse
// baselines), and structural analyses (connectivity, bipartiteness, degree
// statistics, a spectral-gap estimate).
//
// The CSR layout stores all adjacency lists in one contiguous int32 slice,
// which is what makes the dynamics hot loop — "pick a uniform random
// neighbour of v" — a single bounded-random index plus one array load.
package graph

import (
	"fmt"
	"math"
)

// Graph is an immutable simple undirected graph in CSR form. Vertices are
// the integers [0, N()). The zero value is an empty graph.
type Graph struct {
	offsets []int32 // len N()+1; adjacency of v is adj[offsets[v]:offsets[v+1]]
	adj     []int32 // concatenated sorted adjacency lists; len 2·M()
	name    string
}

// N returns the number of vertices.
func (g *Graph) N() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.adj) / 2 }

// Name returns a human-readable description of the graph's construction,
// e.g. "regular(n=4096,d=64)". It is used in experiment table rows.
func (g *Graph) Name() string {
	if g.name == "" {
		return fmt.Sprintf("graph(n=%d,m=%d)", g.N(), g.M())
	}
	return g.name
}

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases the graph's internal storage and must not be modified.
func (g *Graph) Neighbors(v int) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// Neighbor returns the i-th neighbour of v (0-indexed into the sorted
// adjacency list). This is the hot-path accessor used by the dynamics
// engine: sampling a uniform neighbour is Neighbor(v, rng.Intn(Degree(v))).
func (g *Graph) Neighbor(v, i int) int {
	return int(g.adj[int(g.offsets[v])+i])
}

// HasEdge reports whether {u, v} is an edge, by binary search over the
// sorted adjacency list of the lower-degree endpoint.
func (g *Graph) HasEdge(u, v int) bool {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	list := g.Neighbors(u)
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(list[mid]) < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(list) && int(list[lo]) == v
}

// MinDegree returns the minimum degree, or 0 for an empty graph.
func (g *Graph) MinDegree() int {
	n := g.N()
	if n == 0 {
		return 0
	}
	min := g.Degree(0)
	for v := 1; v < n; v++ {
		if d := g.Degree(v); d < min {
			min = d
		}
	}
	return min
}

// MaxDegree returns the maximum degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the average degree 2M/N, or 0 for an empty graph.
func (g *Graph) AvgDegree() float64 {
	if g.N() == 0 {
		return 0
	}
	return 2 * float64(g.M()) / float64(g.N())
}

// DegreeHistogram returns a map from degree to the number of vertices with
// that degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for v := 0; v < g.N(); v++ {
		h[g.Degree(v)]++
	}
	return h
}

// DensityExponent returns α such that MinDegree = N^α, the paper's density
// parameter. It returns 0 for graphs with fewer than 2 vertices or with an
// isolated vertex.
func (g *Graph) DensityExponent() float64 {
	n, d := g.N(), g.MinDegree()
	if n < 2 || d < 1 {
		return 0
	}
	return math.Log(float64(d)) / math.Log(float64(n))
}

// Degrees returns a fresh slice of all vertex degrees.
func (g *Graph) Degrees() []int {
	out := make([]int, g.N())
	for v := range out {
		out[v] = g.Degree(v)
	}
	return out
}

// CSR exposes the raw compressed-sparse-row arrays: offsets (length N()+1)
// and the concatenated sorted adjacency lists (length 2·M()). The returned
// slices alias the graph's internal storage and must not be modified; they
// are what the artifact serializer writes to disk.
func (g *Graph) CSR() (offsets, adj []int32) { return g.offsets, g.adj }

// NewCSR adopts pre-built CSR arrays as a graph without copying — the load
// path for deserialized artifacts. It performs the cheap O(V+E) structural
// checks (monotone offsets starting at 0 and ending at len(adj), neighbour
// indices in range, no self-loops); the full invariant set — sortedness,
// symmetry, no parallel edges — is Validate's, which artifact verification
// runs separately. The arrays are adopted as-is and must not be modified
// afterwards.
func NewCSR(offsets, adj []int32, name string) (*Graph, error) {
	if len(offsets) == 0 {
		if len(adj) != 0 {
			return nil, fmt.Errorf("graph: csr with no offsets but %d adjacency entries", len(adj))
		}
		return &Graph{name: name}, nil
	}
	n := len(offsets) - 1
	if offsets[0] != 0 {
		return nil, fmt.Errorf("graph: csr offsets[0] = %d, want 0", offsets[0])
	}
	if int(offsets[n]) != len(adj) {
		return nil, fmt.Errorf("graph: csr offsets[%d] = %d, want %d", n, offsets[n], len(adj))
	}
	// Validate the whole offsets array before slicing adj with any of it:
	// monotonicity plus the endpoint checks above bound every offset to
	// [0, len(adj)]. Checking pairwise while slicing is not enough — e.g.
	// offsets [0, 100, 0] with empty adj passes both endpoint checks and
	// the v=0 monotonicity test, then the slice would panic.
	for v := 0; v < n; v++ {
		if offsets[v+1] < offsets[v] {
			return nil, fmt.Errorf("graph: csr offsets not monotone at vertex %d", v)
		}
	}
	for v := 0; v < n; v++ {
		for _, w := range adj[offsets[v]:offsets[v+1]] {
			if int(w) < 0 || int(w) >= n {
				return nil, fmt.Errorf("graph: csr vertex %d has out-of-range neighbour %d", v, w)
			}
			if int(w) == v {
				return nil, fmt.Errorf("graph: csr self-loop at vertex %d", v)
			}
		}
	}
	return &Graph{offsets: offsets, adj: adj, name: name}, nil
}

// Validate checks the structural invariants of the CSR representation:
// monotone offsets, sorted adjacency lists, no self-loops, no parallel
// edges, and symmetry (u ∈ adj(v) ⇔ v ∈ adj(u)). It is used by generator
// tests and returns a descriptive error on the first violation.
func (g *Graph) Validate() error {
	n := g.N()
	if len(g.offsets) > 0 && g.offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.offsets[0])
	}
	for v := 0; v < n; v++ {
		if g.offsets[v+1] < g.offsets[v] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
		list := g.Neighbors(v)
		for i, w := range list {
			if int(w) < 0 || int(w) >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbour %d", v, w)
			}
			if int(w) == v {
				return fmt.Errorf("graph: self-loop at vertex %d", v)
			}
			if i > 0 && list[i-1] >= w {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted at position %d", v, i)
			}
			if !g.HasEdge(int(w), v) {
				return fmt.Errorf("graph: edge (%d,%d) not symmetric", v, w)
			}
		}
	}
	if len(g.offsets) > 0 && int(g.offsets[n]) != len(g.adj) {
		return fmt.Errorf("graph: offsets[n] = %d, want %d", g.offsets[n], len(g.adj))
	}
	return nil
}
