package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable Graph. Duplicate
// edges and self-loops are rejected at Build time (self-loops immediately).
// Builders are not safe for concurrent use.
type Builder struct {
	n     int
	edges [][2]int32
	name  string
}

// NewBuilder returns a Builder for a graph on n vertices. It panics if n is
// negative.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n}
}

// SetName records a descriptive name for the built graph.
func (b *Builder) SetName(name string) { b.name = name }

// N returns the number of vertices the builder was created with.
func (b *Builder) N() int { return b.n }

// AddEdge records the undirected edge {u, v}. It panics on out-of-range
// endpoints or self-loops; duplicate edges are deduplicated at Build time.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at vertex %d", u))
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, [2]int32{int32(u), int32(v)})
}

// Build constructs the immutable CSR graph. Duplicate edges collapse to a
// single edge.
func (b *Builder) Build() *Graph {
	// Sort and deduplicate the canonical (u < v) edge list.
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i][0] != b.edges[j][0] {
			return b.edges[i][0] < b.edges[j][0]
		}
		return b.edges[i][1] < b.edges[j][1]
	})
	dedup := b.edges[:0]
	for i, e := range b.edges {
		if i == 0 || e != b.edges[i-1] {
			dedup = append(dedup, e)
		}
	}
	b.edges = dedup

	offsets := make([]int32, b.n+1)
	for _, e := range b.edges {
		offsets[e[0]+1]++
		offsets[e[1]+1]++
	}
	for v := 0; v < b.n; v++ {
		offsets[v+1] += offsets[v]
	}
	adj := make([]int32, 2*len(b.edges))
	cursor := make([]int32, b.n)
	for _, e := range b.edges {
		u, v := e[0], e[1]
		adj[offsets[u]+cursor[u]] = v
		cursor[u]++
		adj[offsets[v]+cursor[v]] = u
		cursor[v]++
	}
	g := &Graph{offsets: offsets, adj: adj, name: b.name}
	// Adjacency lists are sorted because edges were processed in canonical
	// order for the low endpoint but not the high one; sort each list.
	for v := 0; v < b.n; v++ {
		list := g.adj[offsets[v]:offsets[v+1]]
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
	}
	return g
}

// FromEdges builds a graph on n vertices directly from an edge list.
func FromEdges(n int, edges [][2]int, name string) *Graph {
	b := NewBuilder(n)
	b.SetName(name)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}
