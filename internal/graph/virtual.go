package graph

import "fmt"

// Kn is a virtual complete graph on n vertices: it answers the same
// neighbour queries as Complete(n) without materialising the Θ(n²) edge
// list, so complete-graph experiments scale to n = 2^17 and beyond. The
// neighbour list of v is the sorted sequence 0..n-1 with v removed.
type Kn int

// NewKn returns the virtual complete graph on n vertices (n >= 1).
func NewKn(n int) Kn {
	if n < 1 {
		panic("graph: NewKn requires n >= 1")
	}
	return Kn(n)
}

// N returns the number of vertices.
func (k Kn) N() int { return int(k) }

// M returns the number of edges n(n-1)/2.
func (k Kn) M() int { return int(k) * (int(k) - 1) / 2 }

// Degree returns n-1 for every vertex.
func (k Kn) Degree(v int) int { return int(k) - 1 }

// MinDegree returns n-1.
func (k Kn) MinDegree() int { return int(k) - 1 }

// Neighbor returns the i-th smallest neighbour of v: i for i < v,
// otherwise i+1.
func (k Kn) Neighbor(v, i int) int {
	if i < v {
		return i
	}
	return i + 1
}

// Name identifies the topology in experiment tables.
func (k Kn) Name() string { return fmt.Sprintf("complete(n=%d,virtual)", int(k)) }

// MeanFieldEligible marks the virtual complete graph as mean-field
// exchangeable: every vertex samples uniformly from all other vertices, so
// one Best-of-k round depends on the configuration only through the global
// blue count. The dynamics engine dispatches such topologies to an O(1)
// per-round fast path (two binomial draws) instead of Θ(n·k) sampling.
func (k Kn) MeanFieldEligible() bool { return int(k) >= 2 }
