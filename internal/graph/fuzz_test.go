package graph

import "testing"

// FuzzBuilderInvariants feeds arbitrary byte strings interpreted as edge
// lists into the builder and checks that every successfully built graph
// satisfies the CSR invariants. Run with `go test -fuzz=FuzzBuilder` for a
// live campaign; the seed corpus runs in every plain `go test`.
func FuzzBuilderInvariants(f *testing.F) {
	f.Add([]byte{1, 0, 1, 2, 3, 0})
	f.Add([]byte{})
	f.Add([]byte{5, 0, 1, 1, 2, 2, 3, 3, 4, 4, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := int(data[0])%64 + 2
		b := NewBuilder(n)
		for i := 1; i+1 < len(data); i += 2 {
			u, v := int(data[i])%n, int(data[i+1])%n
			if u == v {
				continue
			}
			b.AddEdge(u, v)
		}
		g := b.Build()
		if err := g.Validate(); err != nil {
			t.Fatalf("built graph fails validation: %v", err)
		}
		// Handshake invariant.
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(v)
		}
		if sum != 2*g.M() {
			t.Fatalf("degree sum %d != 2M %d", sum, 2*g.M())
		}
	})
}
