package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/rng"
)

// TestVariantSyncByteIdentical is the refactor guard: routing the
// synchronous default through the variant dispatch must reproduce the
// pre-variant Run byte for byte — same trajectory, same outcome — whether
// the variant is the zero value or spelled out.
func TestVariantSyncByteIdentical(t *testing.T) {
	g := graph.RandomRegular(256, 16, rng.New(3))
	base, err := Run(context.Background(), g, 0.1, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	named, err := Run(context.Background(), g, 0.1, Options{Seed: 11, Variant: Variant{Name: VariantSync}})
	if err != nil {
		t.Fatal(err)
	}
	if base.Rounds != named.Rounds || base.RedWon != named.RedWon || base.Consensus != named.Consensus {
		t.Fatalf("explicit sync diverged: %+v vs %+v", base, named)
	}
	if len(base.BlueTrajectory) != len(named.BlueTrajectory) {
		t.Fatalf("trajectory lengths differ: %d vs %d", len(base.BlueTrajectory), len(named.BlueTrajectory))
	}
	for i := range base.BlueTrajectory {
		if base.BlueTrajectory[i] != named.BlueTrajectory[i] {
			t.Fatalf("trajectories diverge at round %d: %d vs %d", i, base.BlueTrajectory[i], named.BlueTrajectory[i])
		}
	}
}

// TestVariantDeterminism: every variant's Run is a pure function of the
// seed — two runs with identical options produce identical trajectories.
func TestVariantDeterminism(t *testing.T) {
	g := graph.RandomRegular(128, 8, rng.New(3))
	for _, v := range []Variant{
		{Name: VariantAsync},
		{Name: VariantStubborn, StubbornFrac: 0.1},
		{Name: VariantPlurality, Q: 4},
	} {
		t.Run(v.Name, func(t *testing.T) {
			a, err := Run(context.Background(), g, 0.1, Options{Seed: 5, MaxRounds: 200, Variant: v})
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(context.Background(), g, 0.1, Options{Seed: 5, MaxRounds: 200, Variant: v})
			if err != nil {
				t.Fatal(err)
			}
			if a.Rounds != b.Rounds || a.RedWon != b.RedWon || a.Consensus != b.Consensus {
				t.Fatalf("non-deterministic: %+v vs %+v", a, b)
			}
			for i := range a.BlueTrajectory {
				if a.BlueTrajectory[i] != b.BlueTrajectory[i] {
					t.Fatalf("trajectories diverge at round %d", i)
				}
			}
		})
	}
}

// TestVariantDispatchRejections: the core layer re-checks what the spec
// registry validates, so direct library callers get errors, not panics.
func TestVariantDispatchRejections(t *testing.T) {
	g := graph.NewKn(64)
	cases := []struct {
		name string
		opt  Options
		want string
	}{
		{"unknown", Options{Seed: 1, Variant: Variant{Name: "turbo"}}, "unknown variant"},
		{"stubborn no frac", Options{Seed: 1, Variant: Variant{Name: VariantStubborn}}, "stubborn_frac"},
		{"stubborn frac too big", Options{Seed: 1, Variant: Variant{Name: VariantStubborn, StubbornFrac: 0.7}}, "stubborn_frac"},
		{"plurality no q", Options{Seed: 1, Variant: Variant{Name: VariantPlurality}}, "q in [2, 256]"},
		{"async mean-field", Options{Seed: 1, Engine: dynamics.EngineMeanField, Variant: Variant{Name: VariantAsync}}, "mean-field"},
		{"stubborn mean-field", Options{Seed: 1, Engine: dynamics.EngineMeanField, Variant: Variant{Name: VariantStubborn, StubbornFrac: 0.1}}, "mean-field"},
		{"plurality mean-field", Options{Seed: 1, Engine: dynamics.EngineMeanField, Variant: Variant{Name: VariantPlurality, Q: 3}}, "mean-field"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(context.Background(), g, 0.1, tc.opt)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Run() error = %v, want containing %q", err, tc.want)
			}
		})
	}
}

// TestStubbornSuppressesRed: the E15 adversary in the forward dynamic. A
// frozen Blue zealot set must cut the initial Red majority's win rate far
// below the plain dynamic's on the same instances — with 30% of vertices
// frozen Blue the effective initial Blue mass is ~0.62, so Red should
// essentially never win, while the plain dynamic wins most trials.
func TestStubbornSuppressesRed(t *testing.T) {
	g := graph.RandomRegular(256, 16, rng.New(3))
	const trials = 120
	redWins := func(v Variant) int {
		wins := 0
		for i := 0; i < trials; i++ {
			rep, err := Run(context.Background(), g, 0.05, Options{Seed: rng.ChildSeed(77, uint64(i)), MaxRounds: 400, Variant: v})
			if err != nil {
				t.Fatal(err)
			}
			if rep.RedWon {
				wins++
			}
		}
		return wins
	}
	plain := redWins(Variant{})
	stub := redWins(Variant{Name: VariantStubborn, StubbornFrac: 0.3})
	if plain < trials/2 {
		t.Fatalf("plain dynamic won only %d/%d for red; instance too weak for the comparison", plain, trials)
	}
	if stub > trials/10 {
		t.Fatalf("stubborn dynamic let red win %d/%d; zealots should suppress the majority (plain won %d)", stub, trials, plain)
	}
}

// TestAsyncConsensusOnComplete: the sequential dynamic still reaches
// consensus quickly on K_n at a clear imbalance, and its Rounds accounting
// counts sweeps (so it stays comparable to the synchronous round counts).
func TestAsyncConsensusOnComplete(t *testing.T) {
	g := graph.NewKn(256)
	rep, err := Run(context.Background(), g, 0.2, Options{Seed: 9, MaxRounds: 400, Variant: Variant{Name: VariantAsync}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Consensus || !rep.RedWon {
		t.Fatalf("async at delta 0.2 on K_256: %+v", rep)
	}
	if rep.Rounds > 100 {
		t.Fatalf("async took %d sweeps; expected fast convergence", rep.Rounds)
	}
	if len(rep.BlueTrajectory) != rep.Rounds+1 {
		t.Fatalf("trajectory length %d for %d sweeps", len(rep.BlueTrajectory), rep.Rounds)
	}
}

// TestEngineForVariant pins the engine seam: non-sync variants always
// report the general engine (without building topology state), the sync
// default resolves through EngineFor.
func TestEngineForVariant(t *testing.T) {
	g := graph.NewKn(64)
	if e := EngineForVariant(Variant{}, g, dynamics.BestOfThree, dynamics.EngineAuto); e != "mean-field" {
		t.Fatalf("sync on K_n resolved %q, want mean-field", e)
	}
	for _, v := range []Variant{
		{Name: VariantAsync},
		{Name: VariantStubborn, StubbornFrac: 0.1},
		{Name: VariantPlurality, Q: 3},
	} {
		if e := EngineForVariant(v, g, dynamics.BestOfThree, dynamics.EngineAuto); e != "general" {
			t.Fatalf("%s resolved %q, want general", v.Name, e)
		}
	}
}
