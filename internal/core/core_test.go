package core

import (
	"strings"
	"testing"

	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestRunBestOfThreeHappyPath(t *testing.T) {
	g := graph.RandomRegular(1024, 64, rng.New(1))
	rep, err := RunBestOfThree(g, 0.1, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Consensus || !rep.RedWon {
		t.Errorf("report = %+v", rep)
	}
	if rep.Rounds > 30 {
		t.Errorf("rounds = %d, expected double-log", rep.Rounds)
	}
	if rep.PredictedRounds < 3 {
		t.Errorf("prediction = %d implausible", rep.PredictedRounds)
	}
	if len(rep.BlueTrajectory) != rep.Rounds+1 {
		t.Errorf("trajectory length %d for %d rounds", len(rep.BlueTrajectory), rep.Rounds)
	}
	if !rep.Precondition.Satisfied() {
		t.Errorf("dense instance should satisfy preconditions: %v", rep.Precondition)
	}
}

func TestRunRejectsBadDelta(t *testing.T) {
	g := graph.Complete(8)
	for _, d := range []float64{-0.1, 0.6} {
		if _, err := RunBestOfThree(g, d, Options{}); err == nil {
			t.Errorf("delta %v accepted", d)
		}
	}
}

func TestRunPropagatesEngineErrors(t *testing.T) {
	iso := graph.FromEdges(3, [][2]int{{0, 1}}, "isolated")
	if _, err := RunBestOfThree(iso, 0.1, Options{}); err == nil {
		t.Error("isolated vertex not rejected")
	}
}

func TestRunWithBaselineRule(t *testing.T) {
	g := graph.Complete(64)
	rep, err := RunBestOfThree(g, 0.2, Options{Seed: 3, Rule: dynamics.BestOfTwo, MaxRounds: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Consensus {
		t.Errorf("best-of-2 on K64 did not converge: %+v", rep.Rounds)
	}
}

func TestRunRespectsMaxRounds(t *testing.T) {
	g := graph.Cycle(64)
	rep, err := RunBestOfThree(g, 0.0, Options{Seed: 4, MaxRounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds > 5 {
		t.Errorf("rounds = %d exceeds cap", rep.Rounds)
	}
}

func TestCheckPreconditionDense(t *testing.T) {
	g := graph.RandomRegular(4096, 256, rng.New(5))
	p := CheckPrecondition(g, 0.1)
	if !p.DenseEnough || !p.ImbalanceEnough || !p.Satisfied() {
		t.Errorf("precondition = %+v", p)
	}
	if p.Alpha < 0.6 || p.Alpha > 0.7 {
		t.Errorf("alpha = %v, want ~2/3", p.Alpha)
	}
	if p.NoiseFloor <= 0 {
		t.Error("noise floor not set")
	}
}

func TestCheckPreconditionSparse(t *testing.T) {
	g := graph.Cycle(65536)
	p := CheckPrecondition(g, 0.1)
	if p.DenseEnough {
		t.Errorf("cycle should fail the density gate: %+v", p)
	}
	if p.Satisfied() {
		t.Error("Satisfied on a sparse instance")
	}
}

func TestCheckPreconditionTinyDelta(t *testing.T) {
	g := graph.RandomRegular(4096, 256, rng.New(6))
	p := CheckPrecondition(g, 1e-6)
	if p.ImbalanceEnough {
		t.Errorf("delta 1e-6 should fail the (log d)^-1 gate: %+v", p)
	}
}

func TestCheckPreconditionDegenerate(t *testing.T) {
	p := CheckPrecondition(graph.NewBuilder(0).Build(), 0.1)
	if p.Satisfied() {
		t.Error("empty graph should not satisfy preconditions")
	}
}

func TestPreconditionString(t *testing.T) {
	g := graph.Complete(100)
	s := CheckPrecondition(g, 0.1).String()
	for _, frag := range []string{"n=100", "d=99", "alpha=", "delta="} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}
