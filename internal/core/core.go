// Package core is the high-level facade over the paper's machinery: run
// Best-of-Three voting on a graph, check whether Theorem 1's preconditions
// hold for the instance, and compare measured consensus time against the
// paper's prediction. The root package repro re-exports this API.
package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/dynamics"
	"repro/internal/theory"
)

// Topology is the neighbour-query interface shared with the dynamics
// engine.
type Topology = dynamics.Topology

// Report summarises one Best-of-Three run together with the paper's
// prediction for the instance.
type Report struct {
	// Consensus reports whether the run reached a monochromatic state
	// within the round budget.
	Consensus bool
	// RedWon reports whether the consensus (or final majority) is Red, the
	// initial majority colour.
	RedWon bool
	// Rounds is the number of rounds executed.
	Rounds int
	// PredictedRounds is the Theorem 1 estimate O(log log n + log δ⁻¹)
	// with the repository's explicit constants.
	PredictedRounds int
	// BlueTrajectory is the per-round blue count (index 0 = initial).
	BlueTrajectory []int
	// Precondition describes how the instance relates to Theorem 1's
	// hypotheses.
	Precondition Precondition
}

// Precondition is the result of checking Theorem 1's hypotheses on a
// concrete instance.
type Precondition struct {
	// N and MinDegree are the instance parameters.
	N, MinDegree int
	// Alpha is the density exponent log_n(MinDegree).
	Alpha float64
	// AlphaThreshold is the 1/log log n boundary the paper requires
	// α = Ω(·) of.
	AlphaThreshold float64
	// DenseEnough reports α ≥ AlphaThreshold.
	DenseEnough bool
	// Delta is the requested imbalance and DeltaThreshold the paper's
	// (log d)⁻¹ gate (C = 1).
	Delta, DeltaThreshold float64
	// ImbalanceEnough reports δ ≥ DeltaThreshold.
	ImbalanceEnough bool
	// NoiseFloor is the finite-size caveat 4/√n: below it the initial
	// sample itself may not carry a red majority, so "red wins w.h.p."
	// cannot be observed at this n regardless of the theorem.
	NoiseFloor float64
}

// Satisfied reports whether both hypotheses hold.
func (p Precondition) Satisfied() bool { return p.DenseEnough && p.ImbalanceEnough }

// String renders a one-line diagnostic.
func (p Precondition) String() string {
	return fmt.Sprintf("n=%d d=%d alpha=%.3f (>=%.3f: %v) delta=%.4f (>=%.4f: %v)",
		p.N, p.MinDegree, p.Alpha, p.AlphaThreshold, p.DenseEnough,
		p.Delta, p.DeltaThreshold, p.ImbalanceEnough)
}

// CheckPrecondition evaluates Theorem 1's hypotheses on the instance.
func CheckPrecondition(g Topology, delta float64) Precondition {
	n := g.N()
	d := g.MinDegree()
	p := Precondition{N: n, MinDegree: d, Delta: delta}
	if n < 3 || d < 1 {
		return p
	}
	p.Alpha = math.Log(float64(d)) / math.Log(float64(n))
	p.AlphaThreshold = theory.MinAlpha(n, 1)
	p.DenseEnough = p.Alpha >= p.AlphaThreshold
	// The paper allows δ ≥ (log d)^−C for any C > 0; C = 2 keeps the gate
	// meaningful at laptop-scale degrees (C = 1 would demand δ ≥ 0.18 at
	// d = 256, excluding instances the theorem plainly covers).
	p.DeltaThreshold = theory.MinDelta(float64(d), 2)
	p.ImbalanceEnough = delta >= p.DeltaThreshold
	p.NoiseFloor = 4 / math.Sqrt(float64(n))
	return p
}

// Options configures RunBestOfThree.
type Options struct {
	// Seed drives both the initial colouring and the protocol's sampling.
	Seed uint64
	// MaxRounds caps the run; 0 means a generous default derived from the
	// prediction.
	MaxRounds int
	// Workers is the per-round parallelism (0 = GOMAXPROCS).
	Workers int
	// Rule overrides the protocol (zero value = Best-of-Three). Exposed so
	// the facade also serves the baseline protocols.
	Rule dynamics.Rule
	// Engine selects the round engine; the zero value (EngineAuto) takes
	// the O(1) mean-field fast path on eligible topologies (graph.Kn) and
	// the general sharded engine otherwise. EngineGeneral forces the
	// general engine for A/B validation. Non-sync variants always run
	// per-vertex sampling; requesting EngineMeanField with one is an error.
	Engine dynamics.Engine
	// Variant selects the dynamic (sync, async, stubborn, plurality); the
	// zero value is the paper's synchronous dynamic. See the Variant type.
	Variant Variant
	// OnRound, when non-nil, is invoked after every recorded blue count —
	// first with (0, initial count), then once per executed round — on the
	// goroutine driving the run. It must not retain the process.
	OnRound func(round, blueCount int)
}

// RunBestOfThree initialises each vertex independently Blue with
// probability 1/2 − delta (Red otherwise) and runs the protocol to
// consensus, returning the full report. It cannot be cancelled; Run is the
// context-aware entry point.
func RunBestOfThree(g Topology, delta float64, opt Options) (Report, error) {
	return Run(context.Background(), g, delta, opt)
}

// RoundBudget is the effective per-trial round cap Run enforces on the
// instance: MaxRounds when positive, otherwise the generous default
// derived from the Theorem 1 prediction. Exported so observers that
// decimate the round stream (the serve event bus, bo3sim -progress) can
// size their stride from the exact worst case before the first round.
func RoundBudget(g Topology, delta float64, maxRounds int) int {
	if maxRounds > 0 {
		return maxRounds
	}
	predicted := theory.PredictedRounds(g.N(), float64(g.MinDegree()), math.Max(delta, 1e-6))
	return 50*predicted + 1000
}

// Run is RunBestOfThree with cancellation and per-round observation: the
// context is checked between rounds, and a cancelled run returns the
// partial report (trajectory up to the last completed round) together with
// ctx.Err(). For a fixed seed and worker count the trajectory is identical
// to RunBestOfThree's.
func Run(ctx context.Context, g Topology, delta float64, opt Options) (Report, error) {
	if delta < 0 || delta > 0.5 {
		return Report{}, fmt.Errorf("core: delta = %v outside [0, 0.5]", delta)
	}
	rule := opt.Rule
	if rule.K == 0 {
		rule = dynamics.BestOfThree
	}
	pre := CheckPrecondition(g, delta)
	predicted := theory.PredictedRounds(g.N(), float64(g.MinDegree()), math.Max(delta, 1e-6))
	budget := RoundBudget(g, delta, opt.MaxRounds)
	proc, err := newRunProcess(g, delta, rule, opt)
	if err != nil {
		return Report{}, err
	}

	rep := Report{PredictedRounds: predicted, Precondition: pre}
	// Counts come from the process, not the materialised configuration:
	// under the mean-field engine Blues and Consensus are O(1) reads, so
	// the per-round bookkeeping never forces an O(n) materialisation. For
	// the plurality variant, Blues is the opposition mass (vertices not
	// holding opinion 0) and RedWon asks whether opinion 0 won.
	blues := proc.Blues()
	rep.BlueTrajectory = []int{blues}
	if opt.OnRound != nil {
		opt.OnRound(0, blues)
	}
	finish := func(err error) (Report, error) {
		rep.Rounds = proc.Round()
		rep.Consensus = proc.ConsensusReached()
		rep.RedWon = proc.RedWon()
		return rep, err
	}
	for proc.Round() < budget {
		if proc.ConsensusReached() {
			return finish(nil)
		}
		if err := ctx.Err(); err != nil {
			return finish(err)
		}
		proc.Step()
		blues = proc.Blues()
		rep.BlueTrajectory = append(rep.BlueTrajectory, blues)
		if opt.OnRound != nil {
			opt.OnRound(proc.Round(), blues)
		}
	}
	return finish(nil)
}

// EngineFor reports which engine a Run with the given options would
// execute on (g, rule): "general" or "mean-field". The serve layer records
// it per job.
func EngineFor(g Topology, rule dynamics.Rule, e dynamics.Engine) string {
	return dynamics.ResolveEngine(e, g, rule).String()
}
