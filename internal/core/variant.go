package core

import (
	"fmt"
	"math"

	"repro/internal/dynamics"
	"repro/internal/opinion"
	"repro/internal/plurality"
	"repro/internal/rng"
)

// Registered variant names. The spec package's variant registry validates
// wire requests against these; core re-checks the minimum (known name,
// in-range parameters, no mean-field engine on non-sync variants) so direct
// library callers get errors instead of panics.
const (
	// VariantSync is the paper's synchronous dynamic — every vertex updates
	// simultaneously each round. The default; "" resolves to it.
	VariantSync = "sync"
	// VariantAsync is the sequential-activation dynamic: one uniformly
	// random vertex updates per tick, n ticks per reported round (sweep).
	VariantAsync = "async"
	// VariantStubborn is the zealot dynamic of E15: a deterministic
	// fraction of vertices is frozen Blue and never updates, realising the
	// Sprinkling adversary in the forward dynamic.
	VariantStubborn = "stubborn"
	// VariantPlurality is the q-opinion Best-of-Three dynamic of E14.
	// Opinion 0 plays the Red role: it starts with share 1/q + delta and
	// RedWon reports whether it finished as the consensus/plurality winner;
	// the trajectory records the count of vertices NOT holding opinion 0
	// (exactly the two-party blue count at q = 2).
	VariantPlurality = "plurality"
)

// Variant selects which dynamic Run executes, plus the per-variant
// parameters. The zero value is the synchronous default.
type Variant struct {
	// Name is one of the Variant* constants; "" means VariantSync.
	Name string
	// StubbornFrac is the fraction of vertices frozen Blue, in (0, 0.5];
	// consumed only by VariantStubborn.
	StubbornFrac float64
	// Q is the opinion-alphabet size in [2, 256]; consumed only by
	// VariantPlurality.
	Q int
}

// Resolved returns the effective variant name ("" resolves to "sync").
func (v Variant) Resolved() string {
	if v.Name == "" {
		return VariantSync
	}
	return v.Name
}

// runProcess is what the Run loop needs from any variant's process: advance
// one round, read the round count and the minority-mass observable
// (the blue count; for plurality, the mass not holding opinion 0), and
// classify the stop state. Reads never mutate state, so the loop may call
// them freely between Steps.
type runProcess interface {
	Step()
	Round() int
	Blues() int
	ConsensusReached() bool
	RedWon() bool
}

// syncProcess adapts the synchronous engine (and, via embedding-free
// delegation, keeps the pre-variant Run semantics byte-for-byte).
type syncProcess struct{ p *dynamics.Process }

func (s syncProcess) Step()      { s.p.Step() }
func (s syncProcess) Round() int { return s.p.Round() }
func (s syncProcess) Blues() int { return s.p.Blues() }
func (s syncProcess) ConsensusReached() bool {
	_, ok := s.p.Consensus()
	return ok
}
func (s syncProcess) RedWon() bool {
	if col, ok := s.p.Consensus(); ok {
		return col == opinion.Red
	}
	return 2*s.p.Blues() <= s.p.Graph().N()
}

// stubbornProcess adapts the zealot dynamic; semantics match syncProcess
// (the frozen Blue set simply never yields).
type stubbornProcess struct{ p *dynamics.StubbornProcess }

func (s stubbornProcess) Step()      { s.p.Step() }
func (s stubbornProcess) Round() int { return s.p.Round() }
func (s stubbornProcess) Blues() int { return s.p.Blues() }
func (s stubbornProcess) ConsensusReached() bool {
	_, ok := s.p.Consensus()
	return ok
}
func (s stubbornProcess) RedWon() bool {
	if col, ok := s.p.Consensus(); ok {
		return col == opinion.Red
	}
	return 2*s.p.Blues() <= s.p.Graph().N()
}

// asyncProcess adapts the sequential-activation dynamic: one Step is one
// sweep (n ticks), cut short the moment consensus is reached so Rounds
// matches AsyncProcess.Run's ceil(ticks/n) accounting.
type asyncProcess struct {
	p      *dynamics.AsyncProcess
	n      int
	sweeps int
}

func (a *asyncProcess) Step() {
	for i := 0; i < a.n; i++ {
		if b := a.p.Blues(); b == 0 || b == a.n {
			break
		}
		a.p.Tick()
	}
	a.sweeps++
}
func (a *asyncProcess) Round() int { return a.sweeps }
func (a *asyncProcess) Blues() int { return a.p.Blues() }
func (a *asyncProcess) ConsensusReached() bool {
	b := a.p.Blues()
	return b == 0 || b == a.n
}
func (a *asyncProcess) RedWon() bool { return 2*a.p.Blues() <= a.n }

// pluralityProcess adapts the q-opinion dynamic onto the two-party report:
// opinion 0 is the Red analogue, so Blues is the opposition mass and RedWon
// asks whether opinion 0 is the consensus (or current plurality) winner.
type pluralityProcess struct {
	p *plurality.Process
	n int
}

func (p *pluralityProcess) Step()      { p.p.Step() }
func (p *pluralityProcess) Round() int { return p.p.Round() }
func (p *pluralityProcess) Blues() int {
	return p.n - p.p.Config().Counts()[0]
}
func (p *pluralityProcess) ConsensusReached() bool {
	_, ok := p.p.Config().IsConsensus()
	return ok
}
func (p *pluralityProcess) RedWon() bool {
	if op, ok := p.p.Config().IsConsensus(); ok {
		return op == 0
	}
	op, _ := p.p.Config().Plurality()
	return op == 0
}

// newRunProcess builds the variant's process from the run options. Every
// variant derives all randomness from one rng.New(opt.Seed) source in a
// fixed order (initial configuration first, then any variant state, then
// the process seed), so a trial's trajectory stays a pure function of
// (spec, engine workers) — the byte-equivalence contract. The sync path
// consumes the source exactly as the pre-variant Run did, keeping every
// existing trajectory unchanged.
func newRunProcess(g Topology, delta float64, rule dynamics.Rule, opt Options) (runProcess, error) {
	name := opt.Variant.Resolved()
	if name != VariantSync && opt.Engine == dynamics.EngineMeanField {
		return nil, fmt.Errorf("core: engine \"mean-field\" supports only the synchronous default dynamic, not variant %q", name)
	}
	src := rng.New(opt.Seed)
	n := g.N()
	switch name {
	case VariantSync:
		init := opinion.RandomConfig(n, 0.5-delta, src)
		p, err := dynamics.New(g, rule, init, dynamics.Options{Seed: src.Uint64(), Workers: opt.Workers, Engine: opt.Engine})
		if err != nil {
			return nil, err
		}
		return syncProcess{p}, nil
	case VariantAsync:
		init := opinion.RandomConfig(n, 0.5-delta, src)
		p, err := dynamics.NewAsync(g, rule, init, src.Uint64())
		if err != nil {
			return nil, err
		}
		return &asyncProcess{p: p, n: n}, nil
	case VariantStubborn:
		frac := opt.Variant.StubbornFrac
		if frac <= 0 || frac > 0.5 {
			return nil, fmt.Errorf("core: stubborn variant requires stubborn_frac in (0, 0.5], got %v", frac)
		}
		init := opinion.RandomConfig(n, 0.5-delta, src)
		// The zealot set is a deterministic function of the trial seed: the
		// first round(frac·n) entries of a seeded permutation, frozen Blue
		// (the E15 adversary — a Blue minority attacking a Red majority).
		count := int(math.Round(frac * float64(n)))
		stub := src.Perm(n)[:count]
		for _, v := range stub {
			init.Set(v, opinion.Blue)
		}
		p, err := dynamics.NewStubborn(g, rule, init, stub, dynamics.Options{Seed: src.Uint64(), Workers: opt.Workers})
		if err != nil {
			return nil, err
		}
		return stubbornProcess{p}, nil
	case VariantPlurality:
		q := opt.Variant.Q
		if q < 2 || q > 256 {
			return nil, fmt.Errorf("core: plurality variant requires q in [2, 256], got %d", q)
		}
		// share0 = 1/q + delta generalises the two-party 1/2 + delta: at
		// q = 2 the initial law of opinion 0 equals Red's.
		init := plurality.RandomBiasedConfig(n, q, 1/float64(q)+delta, src)
		tie := plurality.TieKeep
		if rule.Tie == dynamics.TieRandom {
			tie = plurality.TieRandomSample
		}
		p, err := plurality.New(g, init, plurality.Options{Seed: src.Uint64(), Workers: opt.Workers, Tie: tie})
		if err != nil {
			return nil, err
		}
		return &pluralityProcess{p: p, n: n}, nil
	default:
		return nil, fmt.Errorf("core: unknown variant %q", name)
	}
}

// EngineForVariant reports which engine a Run with the given options
// executes on: non-sync variants always run per-vertex sampling
// ("general"); the sync default resolves through the engine seam.
func EngineForVariant(v Variant, g Topology, rule dynamics.Rule, e dynamics.Engine) string {
	if v.Resolved() != VariantSync {
		return dynamics.EngineGeneral.String()
	}
	return EngineFor(g, rule, e)
}
