// Command metricnames prints every metric family name the full bo3serve
// service can expose on GET /metrics, one per line. It is the source of
// truth for the .github/check-api-docs.sh doc-drift check: each printed
// name must appear in the docs/API.md metrics reference table.
package main

import (
	"fmt"

	"repro/internal/serve"
)

func main() {
	for _, name := range serve.AllMetricNames() {
		fmt.Println(name)
	}
}
