// Command specvariants prints the spec registry's variant names, one per
// line, sorted. CI (.github/check-api-docs.sh) diffs this output against
// the variant table in docs/API.md so the documentation cannot drift from
// the registry.
package main

import (
	"fmt"

	"repro/spec"
)

func main() {
	for _, name := range spec.Variants() {
		fmt.Println(name)
	}
}
