package cobra

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/votingdag"
)

func TestNewPanics(t *testing.T) {
	g := graph.Complete(4)
	for name, fn := range map[string]func(){
		"k zero":      func() { New(g, 0, []int{0}, rng.New(1)) },
		"no starts":   func() { New(g, 3, nil, rng.New(1)) },
		"start range": func() { New(g, 3, []int{4}, rng.New(1)) },
		"start neg":   func() { New(g, 3, []int{-1}, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSingleParticleVoterWalk(t *testing.T) {
	// k = 1 is a plain coalescing walk: a single particle stays single.
	g := graph.Cycle(10)
	w := New(g, 1, []int{0}, rng.New(2))
	for i := 0; i < 50; i++ {
		if got := w.Step(); got != 1 {
			t.Fatalf("single particle split into %d", got)
		}
	}
	if w.StepCount() != 50 {
		t.Errorf("StepCount = %d", w.StepCount())
	}
}

func TestOccupancyBounds(t *testing.T) {
	// Occupancy can at most triple per step with k = 3 and never exceeds n.
	g := graph.RandomRegular(128, 8, rng.New(3))
	w := New(g, 3, []int{5}, rng.New(4))
	prev := w.Occupied()
	if prev != 1 {
		t.Fatalf("initial occupancy = %d", prev)
	}
	for i := 0; i < 30; i++ {
		cur := w.Step()
		if cur > 3*prev {
			t.Fatalf("occupancy more than tripled: %d -> %d", prev, cur)
		}
		if cur > g.N() || cur < 1 {
			t.Fatalf("occupancy out of range: %d", cur)
		}
		prev = cur
	}
}

func TestKnGrowthMatchesDAGLevels(t *testing.T) {
	// Remark 2 duality: the distribution of the COBRA occupancy at time t
	// matches the voting-DAG level size at level T−t. Compare means over
	// trials on the same large complete graph.
	g := graph.NewKn(4096)
	const T = 5
	const trials = 60
	walkOcc := make([][]float64, T+1)
	dagOcc := make([][]float64, T+1)
	for i := range walkOcc {
		walkOcc[i] = make([]float64, 0, trials)
		dagOcc[i] = make([]float64, 0, trials)
	}
	for trial := 0; trial < trials; trial++ {
		w := New(g, 3, []int{trial % g.N()}, rng.New(uint64(trial)))
		tr := w.Trajectory(T)
		d := votingdag.Build(g, trial%g.N(), T, rng.New(uint64(trial+10000)))
		sizes := d.LevelSizes()
		for s := 0; s <= T; s++ {
			walkOcc[s] = append(walkOcc[s], float64(tr[s]))
			dagOcc[s] = append(dagOcc[s], float64(sizes[T-s]))
		}
	}
	for s := 0; s <= T; s++ {
		wm := stats.Summarize(walkOcc[s]).Mean
		dm := stats.Summarize(dagOcc[s]).Mean
		if wm < 0.9*dm-1 || wm > 1.1*dm+1 {
			t.Errorf("step %d: walk mean %.2f vs DAG level mean %.2f", s, wm, dm)
		}
	}
}

func TestCoverTimeCompleteGraph(t *testing.T) {
	g := graph.Complete(64)
	w := New(g, 3, []int{0}, rng.New(7))
	ct := w.CoverTime(10000)
	if ct < 1 {
		t.Fatalf("cover time = %d", ct)
	}
	// k=3 on K64: occupancy roughly triples until saturation, then coupon-
	// collector-ish tail; anything above 100 steps indicates a bug.
	if ct > 100 {
		t.Errorf("cover time = %d, implausibly slow", ct)
	}
}

func TestCoverTimeAlreadyCovered(t *testing.T) {
	g := graph.Complete(4)
	w := New(g, 2, []int{0, 1, 2, 3}, rng.New(8))
	if ct := w.CoverTime(10); ct != 0 {
		t.Errorf("cover time from full occupancy = %d", ct)
	}
}

func TestCoverTimeBudgetExhausted(t *testing.T) {
	// k = 1 on a long cycle: a single random walk needs Θ(n²) steps; a tiny
	// budget must report -1.
	g := graph.Cycle(200)
	w := New(g, 1, []int{0}, rng.New(9))
	if ct := w.CoverTime(10); ct != -1 {
		t.Errorf("cover time = %d, want -1 on exhausted budget", ct)
	}
}

func TestTrajectoryShape(t *testing.T) {
	g := graph.RandomRegular(64, 4, rng.New(10))
	w := New(g, 3, []int{1}, rng.New(11))
	tr := w.Trajectory(8)
	if len(tr) != 9 || tr[0] != 1 {
		t.Fatalf("trajectory = %v", tr)
	}
}

func TestIsOccupiedAndSet(t *testing.T) {
	g := graph.Complete(5)
	w := New(g, 3, []int{2}, rng.New(12))
	if !w.IsOccupied(2) || w.IsOccupied(0) {
		t.Error("initial occupancy wrong")
	}
	set := w.OccupiedSet()
	if len(set) != 1 || set[0] != 2 {
		t.Errorf("OccupiedSet = %v", set)
	}
}

func BenchmarkStepK3(b *testing.B) {
	g := graph.RandomRegular(8192, 32, rng.New(1))
	w := New(g, 3, []int{0}, rng.New(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Step()
	}
}
