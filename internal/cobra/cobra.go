// Package cobra implements the Coalescing-and-Branching random walk of
// Remark 2 in the paper: at each step every occupied vertex spawns k
// particles (itself plus k−1 copies), each particle moves to a uniformly
// random neighbour, and particles meeting at a vertex coalesce into one.
//
// The paper observes that the random voting-DAG H(v₀) of T levels is
// exactly the trajectory of a T-step COBRA walk with k = 3 started at v₀:
// level T−t of H is the occupied set at walk time t. The duality test in
// the experiment suite drives both objects from the same RNG stream and
// checks the level sizes coincide in distribution.
package cobra

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/rng"
)

// Topology is the neighbour-query interface the walk needs.
type Topology interface {
	N() int
	Degree(v int) int
	Neighbor(v, i int) int
}

// Walk is a running COBRA walk.
type Walk struct {
	g        Topology
	k        int
	occupied *bitset.Set
	nextOcc  *bitset.Set
	src      *rng.Source
	step     int
}

// New returns a COBRA walk with branching factor k started from the given
// seed vertices. It panics if k < 1 or no start vertex is given.
func New(g Topology, k int, starts []int, src *rng.Source) *Walk {
	if k < 1 {
		panic("cobra: branching factor must be >= 1")
	}
	if len(starts) == 0 {
		panic("cobra: need at least one start vertex")
	}
	w := &Walk{
		g:        g,
		k:        k,
		occupied: bitset.New(g.N()),
		nextOcc:  bitset.New(g.N()),
		src:      src,
	}
	for _, v := range starts {
		if v < 0 || v >= g.N() {
			panic(fmt.Sprintf("cobra: start vertex %d out of range [0,%d)", v, g.N()))
		}
		w.occupied.Set(v)
	}
	return w
}

// K returns the branching factor.
func (w *Walk) K() int { return w.k }

// Step performs one branch-move-coalesce round and returns the new number
// of occupied vertices.
func (w *Walk) Step() int {
	w.nextOcc.Reset()
	w.occupied.ForEach(func(v int) {
		deg := w.g.Degree(v)
		if deg == 0 {
			w.nextOcc.Set(v) // stranded particle stays put
			return
		}
		for i := 0; i < w.k; i++ {
			w.nextOcc.Set(w.g.Neighbor(v, w.src.Intn(deg)))
		}
	})
	w.occupied, w.nextOcc = w.nextOcc, w.occupied
	w.step++
	return w.occupied.Count()
}

// StepCount returns the number of completed steps.
func (w *Walk) StepCount() int { return w.step }

// Occupied returns the number of occupied vertices.
func (w *Walk) Occupied() int { return w.occupied.Count() }

// OccupiedSet returns a copy of the occupied vertex set.
func (w *Walk) OccupiedSet() []int { return w.occupied.Ones() }

// IsOccupied reports whether vertex v currently carries a particle.
func (w *Walk) IsOccupied(v int) bool { return w.occupied.Get(v) }

// Trajectory runs the walk for steps rounds and returns the occupancy
// counts after each round, starting with the initial count (index 0).
func (w *Walk) Trajectory(steps int) []int {
	out := make([]int, steps+1)
	out[0] = w.Occupied()
	for i := 1; i <= steps; i++ {
		out[i] = w.Step()
	}
	return out
}

// CoverTime runs the walk until every vertex has been visited at least once
// and returns the number of steps taken, or -1 if maxSteps elapses first.
// For k ≥ 2 on connected non-trivial graphs the cover time is
// polylogarithmic (Berenbrink–Giakkoupis–Kling; refs [3], [6], [9] in the
// paper).
func (w *Walk) CoverTime(maxSteps int) int {
	visited := w.occupied.Clone()
	if visited.All() {
		return 0
	}
	for s := 1; s <= maxSteps; s++ {
		w.Step()
		visited.UnionWith(w.occupied)
		if visited.All() {
			return s
		}
	}
	return -1
}
