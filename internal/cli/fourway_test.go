package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro"
	"repro/internal/artifact"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/spec"
)

// fourWaySpecs is one small RunSpec per registered graph family — the
// test fails if a newly registered family has no entry, so the
// equivalence guarantee can never silently lose coverage.
func fourWaySpecs(t *testing.T) []spec.RunSpec {
	t.Helper()
	graphs := map[string]spec.GraphSpec{
		"complete":         {Family: "complete", N: 32},
		"complete-virtual": {Family: "complete-virtual", N: 32},
		"random-regular":   {Family: "random-regular", N: 32, D: 4, Seed: 3},
		"gnp":              {Family: "gnp", N: 32, P: 0.4, Seed: 3},
		"dense":            {Family: "dense", N: 32, Alpha: 0.7, Seed: 3},
		"sbm":              {Family: "sbm", A: 16, B: 16, PIn: 0.6, POut: 0.2, Seed: 3},
		"cycle":            {Family: "cycle", N: 32},
		"torus":            {Family: "torus", Rows: 4, Cols: 4},
		"hypercube":        {Family: "hypercube", Dim: 4},
	}
	var out []spec.RunSpec
	for _, fam := range spec.Families() {
		g, ok := graphs[fam]
		if !ok {
			t.Fatalf("family %q registered but missing from the four-way equivalence specs; add one", fam)
		}
		out = append(out, spec.RunSpec{
			Graph:  g,
			Delta:  0.1,
			Trials: 3,
			Seed:   42,
			Rule:   &spec.RuleSpec{K: 3},
		})
	}
	return out
}

// serverOutcomes submits the spec to a live server, polls the job to a
// terminal state, and returns the per-trial outcome triples.
func serverOutcomes(t *testing.T, url string, raw []byte) []outcomeTriple {
	t.Helper()
	resp, err := http.Post(url+"/v1/runs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var view serve.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(60 * time.Second)
	for view.State != serve.StateDone {
		if time.Now().After(deadline) || view.State == serve.StateFailed {
			t.Fatalf("server job ended %s (%s)", view.State, view.Error)
		}
		time.Sleep(2 * time.Millisecond)
		r, err := http.Get(url + "/v1/runs/" + view.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	out := make([]outcomeTriple, len(view.Result.Reports))
	for i, o := range view.Result.Reports {
		out[i] = outcomeTriple{RedWon: o.RedWon, Consensus: o.Consensus, Rounds: o.Rounds}
	}
	return out
}

// TestSpecEquivalenceFourWayAllFamilies extends the three-way
// equivalence guarantee to the artifact load path: for every registered
// graph family, one RunSpec must produce byte-identical per-trial
// outcomes through (1) the library Runner, (2) the bo3sim CLI, (3) a
// plain server, and (4) a server whose topology comes from a
// bo3graph-built artifact instead of the generator. Leg 4 is the PR's
// acceptance criterion: a preprocessed artifact is indistinguishable,
// byte for byte, from in-process generation.
func TestSpecEquivalenceFourWayAllFamilies(t *testing.T) {
	specs := fourWaySpecs(t)

	// Pre-populate an artifact directory exactly as `bo3graph build -dir`
	// would, one artifact per CSR family (the virtual family has none and
	// exercises the bypass path on the artifact server).
	artDir, err := artifact.OpenDir(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	csrFamilies := 0
	for _, rs := range specs {
		if rs.Graph.Family == "complete-virtual" {
			continue
		}
		a, err := artifact.FromSpec(rs.Graph)
		if err != nil {
			t.Fatalf("%s: FromSpec: %v", rs.Graph.Family, err)
		}
		if _, err := artDir.Store(a); err != nil {
			t.Fatalf("%s: Store: %v", rs.Graph.Family, err)
		}
		csrFamilies++
	}

	plainMgr := serve.NewManager(serve.Config{Workers: 2})
	defer plainMgr.Close(context.Background())
	plainSrv := httptest.NewServer(serve.NewServer(plainMgr))
	defer plainSrv.Close()

	artMgr := serve.NewManager(serve.Config{Workers: 2, Artifacts: artDir})
	defer artMgr.Close(context.Background())
	artSrv := httptest.NewServer(serve.NewServer(artMgr))
	defer artSrv.Close()

	for _, rs := range specs {
		rs := rs
		t.Run(rs.Graph.Family, func(t *testing.T) {
			raw, err := json.Marshal(rs)
			if err != nil {
				t.Fatal(err)
			}

			// Leg 1: library Runner.
			runner, err := repro.NewRunner(rs)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := runner.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			lib := make([]outcomeTriple, len(rep.Outcomes))
			for i, o := range rep.Outcomes {
				lib[i] = outcomeTriple{RedWon: o.RedWon, Consensus: o.Consensus, Rounds: o.Rounds}
			}
			libJSON, _ := json.Marshal(lib)

			// Leg 2: the bo3sim CLI on the identical spec file.
			specPath := filepath.Join(t.TempDir(), "run.json")
			if err := os.WriteFile(specPath, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			var stdout, stderr bytes.Buffer
			// Exit 2 is bo3sim's "completed, but not every trial reached
			// consensus" signal — a valid outcome for the slow-mixing
			// families (cycle, torus) under the default round budget.
			if code := SimMain([]string{"-spec", specPath, "-json"}, &stdout, &stderr); code != 0 && code != 2 {
				t.Fatalf("bo3sim exited %d: %s", code, stderr.String())
			}
			var cliRep repro.RunReport
			if err := json.Unmarshal(stdout.Bytes(), &cliRep); err != nil {
				t.Fatal(err)
			}
			cliOut := make([]outcomeTriple, len(cliRep.Outcomes))
			for i, o := range cliRep.Outcomes {
				cliOut[i] = outcomeTriple{RedWon: o.RedWon, Consensus: o.Consensus, Rounds: o.Rounds}
			}
			cliJSON, _ := json.Marshal(cliOut)

			// Legs 3 and 4: generator-path server and artifact-path server.
			srvJSON, _ := json.Marshal(serverOutcomes(t, plainSrv.URL, raw))
			artJSON, _ := json.Marshal(serverOutcomes(t, artSrv.URL, raw))

			if !bytes.Equal(libJSON, cliJSON) {
				t.Errorf("library and CLI outcomes differ:\nlib %s\ncli %s", libJSON, cliJSON)
			}
			if !bytes.Equal(libJSON, srvJSON) {
				t.Errorf("library and server outcomes differ:\nlib %s\nsrv %s", libJSON, srvJSON)
			}
			if !bytes.Equal(libJSON, artJSON) {
				t.Errorf("generator and artifact paths diverge:\nlib %s\nart %s", libJSON, artJSON)
			}
		})
	}

	// Every CSR family's topology on the artifact server must have come
	// from the preprocessed artifacts, not the generator.
	st := artMgr.Stats()
	if st.GraphsArtifactHits != int64(csrFamilies) || st.GraphsArtifactMisses != 0 {
		t.Errorf("artifact server hits=%d misses=%d, want %d/0 (every CSR family loaded from disk)",
			st.GraphsArtifactHits, st.GraphsArtifactMisses, csrFamilies)
	}
}

// fourWayVariantSpecs is one representative RunSpec per registered variant
// — the test fails if a newly registered variant has no entry, so the
// cross-layer equivalence tier can never silently lose variant coverage.
func fourWayVariantSpecs(t *testing.T) []spec.RunSpec {
	t.Helper()
	variants := map[string]*spec.VariantSpec{
		"sync":      nil, // the default: exactly the pre-variant request shape
		"async":     {Name: "async"},
		"stubborn":  {Name: "stubborn", StubbornFrac: 0.1},
		"plurality": {Name: "plurality", Q: 4},
	}
	var out []spec.RunSpec
	for _, name := range spec.Variants() {
		v, ok := variants[name]
		if !ok {
			t.Fatalf("variant %q registered but missing from the four-way equivalence specs; add one", name)
		}
		out = append(out, spec.RunSpec{
			Graph:     spec.GraphSpec{Family: "random-regular", N: 64, D: 8, Seed: 3},
			Delta:     0.1,
			Trials:    3,
			MaxRounds: 128,
			Seed:      42,
			Rule:      &spec.RuleSpec{K: 3},
			Variant:   v,
		})
	}
	return out
}

// serverJob submits the spec to a live server, polls to a terminal state,
// and returns the full job view (outcomes plus cache provenance).
func serverJob(t *testing.T, url string, raw []byte) serve.JobView {
	t.Helper()
	resp, err := http.Post(url+"/v1/runs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var view serve.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(60 * time.Second)
	for view.State != serve.StateDone {
		if time.Now().After(deadline) || view.State == serve.StateFailed {
			t.Fatalf("server job ended %s (%s)", view.State, view.Error)
		}
		time.Sleep(2 * time.Millisecond)
		r, err := http.Get(url + "/v1/runs/" + view.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	return view
}

func tripleJSON(reports []serve.TrialReport) []byte {
	out := make([]outcomeTriple, len(reports))
	for i, o := range reports {
		out[i] = outcomeTriple{RedWon: o.RedWon, Consensus: o.Consensus, Rounds: o.Rounds}
	}
	raw, _ := json.Marshal(out)
	return raw
}

// TestSpecEquivalenceFourWayAllVariants is the variant tier's headline
// guarantee: for every registered variant, one RunSpec must produce
// byte-identical per-trial outcomes through (1) the library Runner, (2)
// the bo3sim CLI, (3) a plain server, and (4) a store-backed server — and
// leg 4 twice, so the second submission is a store replay whose recorded
// outcomes are byte-identical to fresh execution. All variants share one
// store and one (graph, delta, trials, seed) tuple, differing only in the
// variant field, so every fresh (non-cached) first submission doubles as
// proof that content keys distinguish variants: a stubborn run is never
// answered from the sync run's record.
func TestSpecEquivalenceFourWayAllVariants(t *testing.T) {
	specs := fourWayVariantSpecs(t)

	plainMgr := serve.NewManager(serve.Config{Workers: 2})
	defer plainMgr.Close(context.Background())
	plainSrv := httptest.NewServer(serve.NewServer(plainMgr))
	defer plainSrv.Close()

	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	storeMgr := serve.NewManager(serve.Config{Workers: 2, Store: st})
	defer storeMgr.Close(context.Background())
	storeSrv := httptest.NewServer(serve.NewServer(storeMgr))
	defer storeSrv.Close()

	for _, rs := range specs {
		rs := rs
		name := rs.VariantName()
		t.Run(name, func(t *testing.T) {
			raw, err := json.Marshal(rs)
			if err != nil {
				t.Fatal(err)
			}

			// Leg 1: library Runner.
			runner, err := repro.NewRunner(rs)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := runner.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			lib := make([]outcomeTriple, len(rep.Outcomes))
			for i, o := range rep.Outcomes {
				lib[i] = outcomeTriple{RedWon: o.RedWon, Consensus: o.Consensus, Rounds: o.Rounds}
			}
			libJSON, _ := json.Marshal(lib)

			// Leg 2: the bo3sim CLI on the identical spec file.
			specPath := filepath.Join(t.TempDir(), "run.json")
			if err := os.WriteFile(specPath, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			var stdout, stderr bytes.Buffer
			if code := SimMain([]string{"-spec", specPath, "-json"}, &stdout, &stderr); code != 0 && code != 2 {
				t.Fatalf("bo3sim exited %d: %s", code, stderr.String())
			}
			var cliRep repro.RunReport
			if err := json.Unmarshal(stdout.Bytes(), &cliRep); err != nil {
				t.Fatal(err)
			}
			cliOut := make([]outcomeTriple, len(cliRep.Outcomes))
			for i, o := range cliRep.Outcomes {
				cliOut[i] = outcomeTriple{RedWon: o.RedWon, Consensus: o.Consensus, Rounds: o.Rounds}
			}
			cliJSON, _ := json.Marshal(cliOut)

			// Leg 3: plain server.
			srvJSON, _ := json.Marshal(serverOutcomes(t, plainSrv.URL, raw))

			// Leg 4: store-backed server, fresh execution. Because the sync
			// variant ran first under the identical (graph, delta, trials,
			// seed), a cache hit here would mean variant keys collide.
			fresh := serverJob(t, storeSrv.URL, raw)
			if fresh.Result.Cached {
				t.Fatalf("%s: first store-server submission was answered from cache; variant does not partition the key space", name)
			}
			wantVariant := name
			if wantVariant == "sync" {
				wantVariant = "" // omitted on the wire for the default
			}
			if fresh.Result.Variant != wantVariant {
				t.Errorf("result variant = %q, want %q", fresh.Result.Variant, wantVariant)
			}
			freshJSON := tripleJSON(fresh.Result.Reports)

			// Leg 4b: the identical request again — must be a store replay
			// with byte-identical outcomes.
			replay := serverJob(t, storeSrv.URL, raw)
			if !replay.Result.Cached {
				t.Errorf("%s: repeated submission was re-executed instead of replayed from the store", name)
			}
			replayJSON := tripleJSON(replay.Result.Reports)

			for legName, leg := range map[string][]byte{
				"CLI": cliJSON, "plain server": srvJSON, "store server": freshJSON, "store replay": replayJSON,
			} {
				if !bytes.Equal(libJSON, leg) {
					t.Errorf("library and %s outcomes differ for variant %s:\nlib %s\nleg %s", legName, name, libJSON, leg)
				}
			}
		})
	}

	// The stats split must account every executed variant job exactly once
	// (replays are cached, not executed).
	stats := storeMgr.Stats()
	for _, name := range spec.Variants() {
		if got := stats.JobsByVariant[name]; got != 1 {
			t.Errorf("store server jobs_by_variant[%s] = %d, want 1", name, got)
		}
	}
	if stats.JobsCached != int64(len(specs)) {
		t.Errorf("jobs_cached = %d, want %d (one replay per variant)", stats.JobsCached, len(specs))
	}
}
