package cli

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/spec"
)

// SimMain is the bo3sim command in library form: it parses args (without
// the program name), runs the spec through the shared repro.Runner, and
// writes the report to stdout. The exit code is 0 on success, 1 on a
// usage/run error, and 2 when any trial missed consensus — so the same
// code path is testable in-process and byte-comparable with the library
// and the HTTP server.
func SimMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bo3sim", flag.ContinueOnError)
	fs.SetOutput(stderr)

	gf := &GraphFlags{Family: "regular", N: 1 << 14, Alpha: 0.6}
	gf.Register(fs)
	var (
		delta     = fs.Float64("delta", 0.05, "initial imbalance: P(blue) = 1/2 - delta")
		k         = fs.Int("k", 3, "neighbours sampled per round (1 = voter model)")
		tie       = fs.String("tie", "keep", "tie rule for even k: keep|random")
		noise     = fs.Float64("noise", 0, "per-sample misreporting probability in [0, 0.5]")
		noReplace = fs.Bool("noreplace", false, "sample k distinct neighbours (ablation rule)")
		variant   = fs.String("variant", "", "opinion dynamic: sync|async|stubborn|plurality (default sync)")
		stubFrac  = fs.Float64("stubborn-frac", 0, "stubborn variant: fraction of vertices frozen Blue, in (0, 0.5]")
		qOpinions = fs.Int("q", 0, "plurality variant: opinion alphabet size in [2, 256]")
		trials    = fs.Int("trials", 1, "independent trials (trial i is seeded ChildSeed(seed, i))")
		seed      = fs.Uint64("seed", 1, "run seed (runs are deterministic per seed)")
		maxRounds = fs.Int("maxrounds", 0, "round budget (0 = auto from prediction)")
		quiet     = fs.Bool("quiet", false, "suppress the per-round trajectory")
		progress  = fs.Bool("progress", false, "print round-decimated progress lines to stderr (at most ~256 across the run, any trial count)")
		specPath  = fs.String("spec", "", "read the RunSpec from this JSON file instead of the flags")
		jsonOut   = fs.Bool("json", false, "print the aggregate report as JSON")
		traceCSV  = fs.String("trace", "", "write trial 0's trajectory to this CSV file")
		traceJSON = fs.String("tracejson", "", "write trial 0's full run record to this JSON file")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "bo3sim: %v\n", err)
		return 1
	}

	var runSpec spec.RunSpec
	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			return fail(err)
		}
		if err := json.Unmarshal(data, &runSpec); err != nil {
			return fail(fmt.Errorf("parsing %s: %w", *specPath, err))
		}
	} else {
		g, err := gf.Spec(*seed)
		if err != nil {
			return fail(err)
		}
		runSpec = spec.RunSpec{
			Graph:     g,
			Delta:     *delta,
			Trials:    *trials,
			MaxRounds: *maxRounds,
			Seed:      *seed,
			Rule:      &spec.RuleSpec{K: *k, Tie: *tie, Noise: *noise, WithoutReplacement: *noReplace},
		}
		if *variant != "" || *stubFrac != 0 || *qOpinions != 0 {
			runSpec.Variant = &spec.VariantSpec{Name: *variant, StubbornFrac: *stubFrac, Q: *qOpinions}
		}
	}

	opts := []repro.RunnerOption{}
	live := !*quiet && !*jsonOut && runSpec.Trials <= 1 && !*progress
	// Set once the topology is built, before Run fires the observer.
	nVertices := 1.0
	if live {
		// Single-trial interactive mode: stream the trajectory as the run
		// executes instead of replaying it afterwards.
		opts = append(opts, repro.WithObserver(func(_, round, blues int) {
			fmt.Fprintf(stdout, "%5d  %10d  %.6f\n", round, blues, float64(blues)/nVertices)
		}))
	}
	// dec is the same fixed-stride decimation the serve event bus applies
	// to /events trajectory frames (library parity with the wire): sized
	// after the topology is built, before Run fires the observer. Keep is
	// pure, so concurrent trial goroutines share it without locking.
	var dec *bus.Decimator
	if *progress {
		opts = append(opts, repro.WithObserver(func(trial, round, blues int) {
			if dec == nil || !dec.Keep(round) {
				return
			}
			fmt.Fprintf(stderr, "progress  trial=%d round=%d blue=%d/%d\n", trial, round, blues, int(nVertices))
		}))
	}
	runner, err := repro.NewRunner(runSpec, opts...)
	if err != nil {
		return fail(err)
	}
	runSpec = runner.Spec() // normalised (Trials default applied)
	g, err := runner.Topology()
	if err != nil {
		return fail(err)
	}
	nVertices = math.Max(1, float64(g.N()))
	if *progress {
		dec = bus.NewDecimator(core.RoundBudget(g, runSpec.Delta, runSpec.MaxRounds), runSpec.Trials, bus.DefaultFrameBudget)
	}

	if !*jsonOut {
		fmt.Fprintf(stdout, "graph       %s\n", g.Name())
		fmt.Fprintf(stdout, "protocol    %s\n", runSpec.Rule.Name())
		if v := runner.VariantName(); v != "sync" {
			fmt.Fprintf(stdout, "variant     %s\n", v)
		}
		fmt.Fprintf(stdout, "delta       %.4f\n", runSpec.Delta)
		pre := repro.CheckPrecondition(g, runSpec.Delta)
		fmt.Fprintf(stdout, "theorem 1   %s\n", pre)
		if !pre.Satisfied() {
			fmt.Fprintln(stdout, "note        instance is outside Theorem 1's hypotheses; behaviour is not guaranteed")
		}
		if runSpec.Delta < pre.NoiseFloor {
			fmt.Fprintf(stdout, "note        delta below the finite-size noise floor %.4f; the sampled majority may be blue\n",
				pre.NoiseFloor)
		}
		if live {
			fmt.Fprintln(stdout, "round  blue-count  blue-fraction")
		}
	}

	rep, err := runner.Run(context.Background())
	if err != nil {
		return fail(err)
	}

	switch {
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return fail(err)
		}
	case runSpec.Trials > 1:
		if !*quiet {
			fmt.Fprintln(stdout, "trial  consensus  red-won  rounds")
			for _, o := range rep.Outcomes {
				fmt.Fprintf(stdout, "%5d  %9v  %7v  %6d\n", o.Trial, o.Consensus, o.RedWon, o.Rounds)
			}
		}
		fmt.Fprintf(stdout, "result      trials=%d redWins=%d consensus=%d meanRounds=%.2f maxRounds=%d predicted=%d\n",
			runSpec.Trials, rep.RedWins, rep.ConsensusCount, rep.MeanRounds, rep.MaxRounds, rep.PredictedRounds)
	default:
		// Single trial, not quiet: the live observer above already printed
		// the trajectory.
		first := rep.Reports[0]
		fmt.Fprintf(stdout, "result      consensus=%v redWon=%v rounds=%d predicted=%d\n",
			first.Consensus, first.RedWon, first.Rounds, rep.PredictedRounds)
	}

	if *traceCSV != "" || *traceJSON != "" {
		first := rep.Reports[0]
		run := &trace.Run{
			Graph:      g.Name(),
			Protocol:   rep.RuleName,
			N:          g.N(),
			Delta:      runSpec.Delta,
			Seed:       rep.Outcomes[0].Seed,
			Consensus:  first.Consensus,
			RedWon:     first.RedWon,
			Rounds:     first.Rounds,
			BlueCounts: first.BlueTrajectory,
		}
		if *traceCSV != "" {
			if err := writeFile(*traceCSV, run.WriteCSV); err != nil {
				return fail(err)
			}
		}
		if *traceJSON != "" {
			if err := writeFile(*traceJSON, run.WriteJSON); err != nil {
				return fail(err)
			}
		}
	}
	if rep.ConsensusCount < runSpec.Trials {
		return 2
	}
	return 0
}

// writeFile creates path and streams write into it, reporting close errors.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
