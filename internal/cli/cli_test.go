package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro"
	"repro/internal/serve"
	"repro/spec"
)

// outcomeTriple is the per-trial summary every entry point must agree on.
type outcomeTriple struct {
	RedWon    bool `json:"red_won"`
	Consensus bool `json:"consensus"`
	Rounds    int  `json:"rounds"`
}

// TestSpecEquivalenceAcrossEntryPoints is the PR's acceptance criterion:
// one RunSpec produces byte-identical per-trial outcomes through the
// library Runner, the bo3sim CLI (-spec -json), and POST /v1/runs.
func TestSpecEquivalenceAcrossEntryPoints(t *testing.T) {
	runSpec := spec.RunSpec{
		Graph:  spec.GraphSpec{Family: "random-regular", N: 512, D: 16, Seed: 7},
		Delta:  0.1,
		Trials: 6,
		Seed:   99,
		Rule:   &spec.RuleSpec{K: 3},
	}

	// Entry point 1: the library Runner.
	runner, err := repro.NewRunner(runSpec)
	if err != nil {
		t.Fatal(err)
	}
	libRep, err := runner.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	lib := make([]outcomeTriple, len(libRep.Outcomes))
	for i, o := range libRep.Outcomes {
		lib[i] = outcomeTriple{RedWon: o.RedWon, Consensus: o.Consensus, Rounds: o.Rounds}
	}

	// Entry point 2: the bo3sim CLI, fed the identical spec as JSON.
	specPath := filepath.Join(t.TempDir(), "run.json")
	raw, err := json.Marshal(runSpec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(specPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := SimMain([]string{"-spec", specPath, "-json"}, &stdout, &stderr); code != 0 {
		t.Fatalf("bo3sim exited %d: %s", code, stderr.String())
	}
	var cliRep repro.RunReport
	if err := json.Unmarshal(stdout.Bytes(), &cliRep); err != nil {
		t.Fatalf("parsing bo3sim -json output: %v", err)
	}
	cli := make([]outcomeTriple, len(cliRep.Outcomes))
	for i, o := range cliRep.Outcomes {
		cli[i] = outcomeTriple{RedWon: o.RedWon, Consensus: o.Consensus, Rounds: o.Rounds}
	}

	// Entry point 3: POST /v1/runs on a live server, polled to done.
	mgr := serve.NewManager(serve.Config{Workers: 2})
	defer mgr.Close(context.Background())
	ts := httptest.NewServer(serve.NewServer(mgr))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var view serve.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(30 * time.Second)
	for view.State != serve.StateDone {
		if time.Now().After(deadline) || view.State == serve.StateFailed {
			t.Fatalf("server job ended %s (%s)", view.State, view.Error)
		}
		time.Sleep(2 * time.Millisecond)
		r, err := http.Get(ts.URL + "/v1/runs/" + view.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	srv := make([]outcomeTriple, len(view.Result.Reports))
	for i, o := range view.Result.Reports {
		srv[i] = outcomeTriple{RedWon: o.RedWon, Consensus: o.Consensus, Rounds: o.Rounds}
	}

	// Byte-identical across all three.
	libJSON, _ := json.Marshal(lib)
	cliJSON, _ := json.Marshal(cli)
	srvJSON, _ := json.Marshal(srv)
	if !bytes.Equal(libJSON, cliJSON) {
		t.Errorf("library and CLI outcomes differ:\nlib %s\ncli %s", libJSON, cliJSON)
	}
	if !bytes.Equal(libJSON, srvJSON) {
		t.Errorf("library and server outcomes differ:\nlib %s\nsrv %s", libJSON, srvJSON)
	}
	if view.Result.Seed != runSpec.Seed {
		t.Errorf("server replaced the explicit seed: %d vs %d", view.Result.Seed, runSpec.Seed)
	}
}

// TestSimMainFlagsMatchSpecFile: the flag binder resolves to the same spec
// (and therefore the same outcomes) as the equivalent -spec file.
func TestSimMainFlagsMatchSpecFile(t *testing.T) {
	args := []string{"-graph", "regular", "-n", "256", "-d", "8", "-delta", "0.15", "-trials", "3", "-seed", "5", "-json", "-quiet"}
	var flagOut, errBuf bytes.Buffer
	if code := SimMain(args, &flagOut, &errBuf); code != 0 {
		t.Fatalf("flags run exited %d: %s", code, errBuf.String())
	}
	var flagRep repro.RunReport
	if err := json.Unmarshal(flagOut.Bytes(), &flagRep); err != nil {
		t.Fatal(err)
	}

	raw, err := json.Marshal(flagRep.Spec)
	if err != nil {
		t.Fatal(err)
	}
	specPath := filepath.Join(t.TempDir(), "run.json")
	if err := os.WriteFile(specPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var fileOut bytes.Buffer
	if code := SimMain([]string{"-spec", specPath, "-json"}, &fileOut, &errBuf); code != 0 {
		t.Fatalf("spec-file run exited %d: %s", code, errBuf.String())
	}
	if !bytes.Equal(flagOut.Bytes(), fileOut.Bytes()) {
		t.Errorf("flag-built and file-loaded specs diverge:\n%s\n%s", flagOut.String(), fileOut.String())
	}
}

// TestGraphFlagsDerivations pins the historical CLI derivations now routed
// through the registry.
func TestGraphFlagsDerivations(t *testing.T) {
	cases := []struct {
		name string
		in   GraphFlags
		want spec.GraphSpec
	}{
		{"regular from alpha", GraphFlags{Family: "regular", N: 1024, Alpha: 0.5},
			spec.GraphSpec{Family: "random-regular", N: 1024, D: 32, Seed: 9}},
		{"regular odd nd bumped", GraphFlags{Family: "regular", N: 255, Alpha: 0.5},
			spec.GraphSpec{Family: "random-regular", N: 255, D: 16, Seed: 9}},
		{"regular saturates to Kn", GraphFlags{Family: "regular", N: 16, Alpha: 1},
			spec.GraphSpec{Family: "complete-virtual", N: 16}},
		{"complete is materialised", GraphFlags{Family: "complete", N: 64},
			spec.GraphSpec{Family: "complete", N: 64}},
		{"complete-virtual", GraphFlags{Family: "complete-virtual", N: 64},
			spec.GraphSpec{Family: "complete-virtual", N: 64}},
		{"gnp from alpha", GraphFlags{Family: "gnp", N: 100, Alpha: 1},
			spec.GraphSpec{Family: "gnp", N: 100, P: 1, Seed: 9}},
		{"dense passthrough", GraphFlags{Family: "dense", N: 128, Alpha: 0.7},
			spec.GraphSpec{Family: "dense", N: 128, Alpha: 0.7, Seed: 9}},
		{"torus side from n", GraphFlags{Family: "torus", N: 100},
			spec.GraphSpec{Family: "torus", Rows: 10, Cols: 10}},
		{"torus explicit", GraphFlags{Family: "torus", Rows: 4, Cols: 8},
			spec.GraphSpec{Family: "torus", Rows: 4, Cols: 8}},
		{"hypercube from n", GraphFlags{Family: "hypercube", N: 1024},
			spec.GraphSpec{Family: "hypercube", Dim: 10}},
		{"cycle", GraphFlags{Family: "cycle", N: 12},
			spec.GraphSpec{Family: "cycle", N: 12}},
		{"sbm explicit", GraphFlags{Family: "sbm", A: 60, B: 40, PIn: 0.4, POut: 0.1},
			spec.GraphSpec{Family: "sbm", A: 60, B: 40, PIn: 0.4, POut: 0.1, Seed: 9}},
	}
	for _, c := range cases {
		got, err := c.in.Spec(9)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s: got %+v, want %+v", c.name, got, c.want)
		}
	}

	// sbm halves -n and derives probabilities when unset.
	got, err := (&GraphFlags{Family: "sbm", N: 1000, Alpha: 0.6}).Spec(1)
	if err != nil {
		t.Fatal(err)
	}
	if got.A != 500 || got.B != 500 || got.PIn <= 0 || got.POut <= 0 || got.POut >= got.PIn {
		t.Errorf("sbm defaults wrong: %+v", got)
	}

	if _, err := (&GraphFlags{Family: "petersen", N: 10}).Spec(1); err == nil {
		t.Error("unknown family accepted")
	}

	// Every registry family appears exactly once in the accepted names.
	seen := map[string]int{}
	for _, name := range FamilyNames() {
		seen[name]++
	}
	for _, name := range spec.Families() {
		if seen[name] != 1 {
			t.Errorf("family %q appears %d times in FamilyNames", name, seen[name])
		}
	}
}

// TestGraphFlagsRegisterDefaults: field values at Register time become the
// flag defaults, and parsed flags land in the spec.
func TestGraphFlagsRegisterDefaults(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	gf := &GraphFlags{Family: "regular", N: 2048, Alpha: 0.6, D: 32}
	gf.Register(fs)
	if err := fs.Parse([]string{"-graph", "sbm", "-a", "30", "-b", "20", "-pin", "0.5"}); err != nil {
		t.Fatal(err)
	}
	got, err := gf.Spec(3)
	if err != nil {
		t.Fatal(err)
	}
	want := spec.GraphSpec{Family: "sbm", A: 30, B: 20, PIn: 0.5, POut: 0.125, Seed: 3}
	if got != want {
		t.Errorf("got %+v, want %+v", got, want)
	}
}
