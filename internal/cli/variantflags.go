package cli

import (
	"fmt"
	"strconv"
	"strings"

	"repro/spec"
)

// ParseVariants parses a comma-separated variant axis ("sync,async" or
// "stubborn:0.05,plurality:4") into grid entries. Each element is a
// registered variant name, optionally followed by ":" and that variant's
// parameter — the stubborn fraction or the plurality alphabet size q.
// Names are resolved (and parameters range-checked) by the spec registry
// when the grid validates, so this only handles the surface syntax.
func ParseVariants(s string) ([]spec.VariantSpec, error) {
	var out []spec.VariantSpec
	for _, elem := range strings.Split(s, ",") {
		elem = strings.TrimSpace(elem)
		if elem == "" {
			continue
		}
		name, param, hasParam := strings.Cut(elem, ":")
		v := spec.VariantSpec{Name: name}
		if hasParam {
			switch name {
			case "stubborn":
				frac, err := strconv.ParseFloat(param, 64)
				if err != nil {
					return nil, fmt.Errorf("variant %q: bad fraction %q: %v", name, param, err)
				}
				v.StubbornFrac = frac
			case "plurality":
				q, err := strconv.Atoi(param)
				if err != nil {
					return nil, fmt.Errorf("variant %q: bad q %q: %v", name, param, err)
				}
				v.Q = q
			default:
				return nil, fmt.Errorf("variant %q takes no parameter (got %q)", name, param)
			}
		}
		out = append(out, v)
	}
	return out, nil
}
