// Package cli hosts the flag→spec binding shared by cmd/bo3sim and
// cmd/bo3sweep, plus the bo3sim entry point in library form so the
// spec-equivalence tests can drive the CLI in-process. Both commands
// resolve graph families through the spec registry and maintain no family
// list of their own: the binder only adds per-family flag derivations
// (alpha→d, n→torus side, …), families without derivations pass straight
// through to the registry, and unknown names are rejected by it.
package cli

import (
	"flag"
	"math"
	"sort"
	"strings"

	"repro/spec"
)

// GraphFlags binds the shared graph-selection flags. Zero-valued
// family-specific fields are derived from -n and -alpha at Spec time, so
// `-graph regular -n 16384 -alpha 0.6` works exactly like the historical
// CLIs while `-d`, `-rows`, `-dim`, `-a`, … pin parameters explicitly.
// Field values at Register time become the flag defaults, letting each
// command choose its own.
type GraphFlags struct {
	Family     string
	N          int
	Alpha      float64
	D          int
	P          float64
	Rows, Cols int
	Dim        int
	A, B       int
	PIn, POut  float64
}

// cliAliases maps the historical CLI family names onto the registry.
// Registry names always win: an alias may only name a family the registry
// does not, so every registered family stays reachable from the flags.
// (The historical "complete" shorthand is gone — "complete" now selects
// the registry's materialised K_n; use "complete-virtual" for the O(1)
// virtual graph the old shorthand meant.)
var cliAliases = map[string]string{
	"regular": "random-regular",
}

// FamilyNames lists every accepted -graph value, sorted: the spec
// registry plus the CLI aliases.
func FamilyNames() []string {
	names := spec.Families()
	for alias := range cliAliases {
		names = append(names, alias)
	}
	sort.Strings(names)
	return names
}

// Register installs the flags on fs, using the receiver's current field
// values as defaults.
func (f *GraphFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Family, "graph", f.Family, "graph family: "+strings.Join(FamilyNames(), "|"))
	fs.IntVar(&f.N, "n", f.N, "number of vertices (n-parameterised families; split across communities for sbm)")
	fs.Float64Var(&f.Alpha, "alpha", f.Alpha, "density exponent: derives d = ⌈n^alpha⌉ (regular/dense), p = n^(alpha-1) (gnp), and the sbm default pin when the explicit flags are zero")
	fs.IntVar(&f.D, "d", f.D, "random-regular degree (0 = derive from -alpha)")
	fs.Float64Var(&f.P, "p", f.P, "gnp edge probability (0 = derive from -alpha)")
	fs.IntVar(&f.Rows, "rows", f.Rows, "torus rows (0 = derive from -n)")
	fs.IntVar(&f.Cols, "cols", f.Cols, "torus cols (0 = derive from -n)")
	fs.IntVar(&f.Dim, "dim", f.Dim, "hypercube dimension (0 = derive from -n)")
	fs.IntVar(&f.A, "a", f.A, "sbm community size a (0 = n/2)")
	fs.IntVar(&f.B, "b", f.B, "sbm community size b (0 = n - a)")
	fs.Float64Var(&f.PIn, "pin", f.PIn, "sbm intra-community edge probability (0 = derive from -alpha)")
	fs.Float64Var(&f.POut, "pout", f.POut, "sbm inter-community edge probability (0 = pin/4)")
}

// Spec resolves the flags to a canonical GraphSpec. seed becomes the
// generator seed for the families that consume one. The returned spec is
// validated by the registry.
func (f *GraphFlags) Spec(seed uint64) (spec.GraphSpec, error) {
	family := f.Family
	if canonical, ok := cliAliases[family]; ok {
		family = canonical
	}
	s := spec.GraphSpec{Family: family}
	switch family {
	case "random-regular":
		d := f.D
		if d <= 0 {
			d = int(math.Ceil(math.Pow(float64(f.N), f.Alpha)))
		}
		if (f.N*d)%2 != 0 {
			d++
		}
		if d >= f.N {
			// The derived degree saturates: the family member is K_n.
			s.Family = "complete-virtual"
			s.N = f.N
			break
		}
		s.N, s.D = f.N, d
	case "gnp":
		p := f.P
		if p <= 0 {
			p = math.Pow(float64(f.N), f.Alpha-1)
		}
		s.N, s.P = f.N, p
	case "dense":
		s.N, s.Alpha = f.N, f.Alpha
	case "complete", "complete-virtual", "cycle":
		s.N = f.N
	case "torus":
		rows, cols := f.Rows, f.Cols
		if rows <= 0 && cols <= 0 {
			side := int(math.Round(math.Sqrt(float64(f.N))))
			if side < 3 {
				side = 3
			}
			rows, cols = side, side
		} else if rows <= 0 {
			rows = cols
		} else if cols <= 0 {
			cols = rows
		}
		s.Rows, s.Cols = rows, cols
	case "hypercube":
		dim := f.Dim
		if dim <= 0 {
			dim = int(math.Round(math.Log2(float64(f.N))))
			if dim < 2 {
				dim = 2
			}
		}
		s.Dim = dim
	case "sbm":
		a, b := f.A, f.B
		if a <= 0 {
			a = f.N / 2
		}
		if b <= 0 {
			b = f.N - a
		}
		pin, pout := f.PIn, f.POut
		if pin <= 0 {
			// Dense enough that isolated vertices are vanishingly unlikely
			// at either community size: alpha-derived, floored at 16·ln n/n.
			n := float64(a + b)
			pin = math.Max(math.Pow(n, f.Alpha-1), 16*math.Log(n)/n)
		}
		if pout <= 0 {
			pout = pin / 4
		}
		s.A, s.B, s.PIn, s.POut = a, b, pin, pout
	default:
		// A family registered in spec but without CLI derivations of its
		// own still works: every flag maps straight onto its spec field,
		// and the registry's validation decides what the family consumes.
		// Only names absent from the registry are rejected (by Validate
		// below) — the binder never maintains its own family list.
		s.N, s.D, s.P, s.Alpha = f.N, f.D, f.P, f.Alpha
		s.Rows, s.Cols, s.Dim = f.Rows, f.Cols, f.Dim
		s.A, s.B, s.PIn, s.POut = f.A, f.B, f.PIn, f.POut
	}
	if spec.FamilySeeded(s.Family) {
		s.Seed = seed
	}
	if err := s.Validate(); err != nil {
		return spec.GraphSpec{}, err
	}
	return s, nil
}
