package metrics

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"slices"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition content type served by
// Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every family in Prometheus text format 0.0.4.
// Families appear in name order, children in label-value order, so the
// output is byte-deterministic for a fixed registry state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := slices.Clone(r.names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	slices.SortFunc(fams, func(a, b *family) int { return strings.Compare(a.name, b.name) })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if err := f.write(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving the exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = r.WritePrometheus(w)
	})
}

func (f *family) write(w *bufio.Writer) error {
	w.WriteString("# HELP ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(escapeHelp(f.help))
	w.WriteString("\n# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(f.kind)
	w.WriteByte('\n')

	if f.fn != nil {
		w.WriteString(f.name)
		w.WriteByte(' ')
		w.WriteString(formatFloat(f.fn()))
		w.WriteByte('\n')
		return nil
	}

	f.mu.Lock()
	keys := slices.Clone(f.order)
	children := make([]*series, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.Unlock()
	slices.SortFunc(keys, strings.Compare)
	slices.SortFunc(children, func(a, b *series) int {
		return strings.Compare(labelKey(a.labelValues), labelKey(b.labelValues))
	})

	for _, s := range children {
		if f.kind == kindHistogram {
			writeHistogram(w, f, s)
			continue
		}
		w.WriteString(f.name)
		writeLabels(w, f.labels, s.labelValues, "", 0)
		w.WriteByte(' ')
		w.WriteString(strconv.FormatInt(s.val.Load(), 10))
		w.WriteByte('\n')
	}
	return nil
}

func writeHistogram(w *bufio.Writer, f *family, s *series) {
	// Snapshot count first, then buckets: a concurrent Observe that lands
	// between the loads can only make buckets sum to >= count, never lose
	// an observation that count claims.
	count := s.count.Load()
	sum := math.Float64frombits(s.sumBits.Load())
	var cum int64
	for i := range f.buckets {
		cum += s.counts[i].Load()
		w.WriteString(f.name)
		w.WriteString("_bucket")
		writeLabels(w, f.labels, s.labelValues, "le", f.buckets[i])
		w.WriteByte(' ')
		w.WriteString(strconv.FormatInt(cum, 10))
		w.WriteByte('\n')
	}
	cum += s.inf.Load()
	w.WriteString(f.name)
	w.WriteString("_bucket")
	writeLabels(w, f.labels, s.labelValues, "le", math.Inf(1))
	w.WriteByte(' ')
	w.WriteString(strconv.FormatInt(cum, 10))
	w.WriteByte('\n')

	w.WriteString(f.name)
	w.WriteString("_sum")
	writeLabels(w, f.labels, s.labelValues, "", 0)
	w.WriteByte(' ')
	w.WriteString(formatFloat(sum))
	w.WriteByte('\n')
	w.WriteString(f.name)
	w.WriteString("_count")
	writeLabels(w, f.labels, s.labelValues, "", 0)
	w.WriteByte(' ')
	w.WriteString(strconv.FormatInt(count, 10))
	w.WriteByte('\n')
}

// writeLabels renders {a="x",le="0.5"}; extra is the appended label name
// ("le" for histogram buckets) or "" for none.
func writeLabels(w *bufio.Writer, names, values []string, extra string, bound float64) {
	if len(names) == 0 && extra == "" {
		return
	}
	w.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(n)
		w.WriteString(`="`)
		w.WriteString(escapeLabel(values[i]))
		w.WriteByte('"')
	}
	if extra != "" {
		if len(names) > 0 {
			w.WriteByte(',')
		}
		w.WriteString(extra)
		w.WriteString(`="`)
		w.WriteString(formatFloat(bound))
		w.WriteByte('"')
	}
	w.WriteByte('}')
}

// formatFloat renders a float as Prometheus expects: shortest round-trip
// form, "+Inf"/"-Inf"/"NaN" spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
