// Package metrics is a zero-dependency, concurrency-safe metrics
// registry with Prometheus text-format exposition: the instrumentation
// substrate under bo3serve's /metrics endpoint.
//
// Three instrument kinds cover the service's needs:
//
//   - Counter: a monotonically increasing int64 (requests served, jobs
//     completed, bytes appended). Cheap enough for any hot path — one
//     atomic add.
//
//   - Gauge: an int64 that goes both ways (busy workers, queue depth).
//     Func-backed variants (GaugeFunc/CounterFunc) read a value at
//     scrape time instead of being pushed, for state another layer
//     already owns (uptime, store bytes, sequence numbers).
//
//   - Histogram: fixed upper-bound buckets with an exact sum and count —
//     the sum is accumulated as float64 bits under CAS, not derived from
//     bucket midpoints, so mean latency computed from _sum/_count is
//     exact, and bucket boundaries only quantise quantile estimates.
//
// Instruments come in unlabeled and labeled ("Vec") forms. Label
// cardinality is the caller's responsibility: label values become wire
// series, so bound them (engine names, route patterns, status classes —
// never job IDs).
//
// Creation is idempotent: asking the registry for an existing name
// returns the existing instrument when the kind and label names match,
// and panics on a mismatch — instrument identity bugs should fail at
// startup, not scrape time. All methods are safe for concurrent use.
package metrics

import (
	"fmt"
	"math"
	"slices"
	"sync"
	"sync/atomic"
	"time"
)

// Instrument kinds, as rendered in exposition TYPE lines.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// DefBuckets are the default latency buckets, in seconds: 100µs to 60s,
// sized for request/job/IO latencies.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// FastBuckets are sub-microsecond-to-second latency buckets for hot
// in-process operations (bus publishes, log appends) that complete far
// under DefBuckets' floor.
var FastBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 5e-3, 2.5e-2, 0.1, 1,
}

// Registry holds a set of named metric families and renders them in
// Prometheus text format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // registration order
}

// family is one named metric: kind, label names, and the child series.
type family struct {
	name, help, kind string
	labels           []string
	buckets          []float64      // histograms only
	fn               func() float64 // func-backed: read at scrape, no children

	mu       sync.Mutex
	children map[string]*series
	order    []string // child creation order
}

// series is one (label values) child of a family. Counters and gauges
// use val; histograms use counts/sumBits/count.
type series struct {
	labelValues []string
	val         atomic.Int64

	counts  []atomic.Int64 // per-bucket (non-cumulative); cumulated at render
	inf     atomic.Int64   // observations above the last bucket
	sumBits atomic.Uint64  // float64 bits of the exact observation sum
	count   atomic.Int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family returns the named family, creating it if needed and panicking on
// a kind or label-name mismatch with an existing registration.
func (r *Registry) family(name, help, kind string, buckets []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !slices.Equal(f.labels, labels) {
			panic(fmt.Sprintf("metrics: %s re-registered as %s%v, was %s%v", name, kind, labels, f.kind, f.labels))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: labels, buckets: buckets, children: make(map[string]*series)}
	r.families[name] = f
	r.names = append(r.names, name)
	return f
}

// child returns the series for the label values, creating it if needed.
func (f *family) child(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.children[key]; ok {
		return s
	}
	s := &series{labelValues: slices.Clone(values)}
	if f.kind == kindHistogram {
		s.counts = make([]atomic.Int64, len(f.buckets))
	}
	f.children[key] = s
	f.order = append(f.order, key)
	return s
}

// labelKey joins label values into a map key; 0x1f never appears in a
// sane label value, so joined keys cannot collide across value splits.
func labelKey(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	out := values[0]
	for _, v := range values[1:] {
		out += "\x1f" + v
	}
	return out
}

// Names returns every registered family name in registration order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return slices.Clone(r.names)
}

// ---------------------------------------------------------------------
// Counter

// Counter is a monotonically increasing value.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.s.val.Add(1) }

// Add adds n (n must be >= 0; negative adds corrupt monotonicity and are
// the caller's bug — not checked on the hot path).
func (c *Counter) Add(n int64) { c.s.val.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.s.val.Load() }

// Counter returns the unlabeled counter with this name.
func (r *Registry) Counter(name, help string) *Counter {
	return &Counter{r.family(name, help, kindCounter, nil, nil).child(nil)}
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family with this name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, kindCounter, nil, labels)}
}

// With returns the child for the label values, creating it on first use.
func (v *CounterVec) With(values ...string) *Counter { return &Counter{v.f.child(values)} }

// Values snapshots every child keyed by its joined label values (single-
// label vecs are keyed by the bare value).
func (v *CounterVec) Values() map[string]int64 {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	out := make(map[string]int64, len(v.f.children))
	for k, s := range v.f.children {
		out[k] = s.val.Load()
	}
	return out
}

// CounterFunc registers a counter whose value is read at scrape time.
// For monotone state owned elsewhere (sequence numbers); fn must be safe
// for concurrent use and must not call back into the registry.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.family(name, help, kindCounter, nil, nil).fn = fn
}

// ---------------------------------------------------------------------
// Gauge

// Gauge is an instantaneous int64 value.
type Gauge struct{ s *series }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.s.val.Store(v) }

// Add moves the value by delta (negative allowed).
func (g *Gauge) Add(delta int64) { g.s.val.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.s.val.Load() }

// Gauge returns the unlabeled gauge with this name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return &Gauge{r.family(name, help, kindGauge, nil, nil).child(nil)}
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family with this name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, kindGauge, nil, labels)}
}

// With returns the child for the label values, creating it on first use.
func (v *GaugeVec) With(values ...string) *Gauge { return &Gauge{v.f.child(values)} }

// GaugeFunc registers a gauge whose value is read at scrape time; fn
// must be safe for concurrent use and must not call back into the
// registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.family(name, help, kindGauge, nil, nil).fn = fn
}

// ---------------------------------------------------------------------
// Histogram

// Histogram accumulates observations into fixed upper-bound buckets with
// an exact sum and count.
type Histogram struct {
	s       *series
	buckets []float64
}

// Observe records one observation (for latencies: seconds).
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket counts are small (≤ ~20) and the scan is
	// branch-predictable; a binary search buys nothing at this size.
	i := 0
	for i < len(h.buckets) && v > h.buckets[i] {
		i++
	}
	if i < len(h.buckets) {
		h.s.counts[i].Add(1)
	} else {
		h.s.inf.Add(1)
	}
	for {
		old := h.s.sumBits.Load()
		if h.s.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	h.s.count.Add(1)
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Seconds()) }

// Sum returns the exact sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.s.sumBits.Load()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.s.count.Load() }

// Histogram returns the unlabeled histogram with this name. buckets are
// the upper bounds in ascending order, +Inf implicit; nil = DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.family(name, help, kindHistogram, normBuckets(buckets), nil)
	return &Histogram{f.child(nil), f.buckets}
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec returns the labeled histogram family with this name;
// bucket semantics as in Histogram.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, kindHistogram, normBuckets(buckets), labels)}
}

// With returns the child for the label values, creating it on first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	return &Histogram{v.f.child(values), v.f.buckets}
}

// normBuckets validates bucket bounds (nil defaults to DefBuckets).
func normBuckets(buckets []float64) []float64 {
	if buckets == nil {
		return DefBuckets
	}
	if len(buckets) == 0 || !slices.IsSorted(buckets) {
		panic("metrics: histogram buckets must be non-empty and ascending")
	}
	return slices.Clone(buckets)
}
