package metrics

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Lint is a minimal Prometheus text-format checker used by tests and the
// fleet smoke: every line must be a comment or `name[{labels}] value`,
// every sample must belong to a TYPE-declared family, histogram samples
// must carry the _bucket/_sum/_count suffixes of a declared histogram,
// and values must parse as non-NaN floats. It is deliberately stricter
// than Prometheus itself (no blank lines, no untyped samples): it lints
// our own output, not arbitrary expositions.
func Lint(text string) error {
	types := map[string]string{}
	for i, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		lineNo := i + 1
		if line == "" {
			return fmt.Errorf("line %d: empty line in exposition", lineNo)
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				return fmt.Errorf("line %d: malformed TYPE %q", lineNo, line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram":
			default:
				return fmt.Errorf("line %d: unknown type %q", lineNo, parts[1])
			}
			types[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if j := strings.IndexByte(line, '{'); j >= 0 {
			k := strings.LastIndexByte(line, '}')
			if k < j {
				return fmt.Errorf("line %d: unbalanced braces %q", lineNo, line)
			}
			name = line[:j]
			if err := lintLabels(line[j+1 : k]); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			line = name + line[k+1:]
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return fmt.Errorf("line %d: want `name value`, got %q", lineNo, line)
		}
		if name == line {
			name = fields[0]
		}
		if v, err := strconv.ParseFloat(fields[1], 64); err != nil || math.IsNaN(v) {
			return fmt.Errorf("line %d: bad value %q (%v)", lineNo, fields[1], err)
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suf); ok && types[b] == "histogram" {
				base = b
				break
			}
		}
		if _, ok := types[base]; !ok {
			return fmt.Errorf("line %d: sample %q has no preceding TYPE", lineNo, name)
		}
	}
	return nil
}

// lintLabels validates a `a="x",b="y"` label body (commas inside quoted
// values are respected).
func lintLabels(s string) error {
	inQuote := false
	start := 0
	var pairs []string
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				pairs = append(pairs, s[start:i])
				start = i + 1
			}
		}
	}
	pairs = append(pairs, s[start:])
	for _, p := range pairs {
		name, val, ok := strings.Cut(p, "=")
		if !ok || name == "" || len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
			return fmt.Errorf("malformed label pair %q", p)
		}
	}
	return nil
}
