package metrics

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Idempotent re-registration returns the same underlying series.
	if got := r.Counter("jobs_total", "jobs").Value(); got != 5 {
		t.Fatalf("re-registered counter = %d, want 5", got)
	}

	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}

	v := r.CounterVec("by_engine", "per engine", "engine")
	v.With("general").Add(2)
	v.With("meanfield").Inc()
	v.With("general").Inc()
	vals := v.Values()
	if vals["general"] != 3 || vals["meanfield"] != 1 {
		t.Fatalf("vec values = %v", vals)
	}
}

func TestRegistrationMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "x")
	for _, tc := range []func(){
		func() { r.Gauge("x", "x") },
		func() { r.CounterVec("x", "x", "label") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on kind/label mismatch")
				}
			}()
			tc()
		}()
	}
}

func TestHistogramBucketsSumCount(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{0.01, 0.1, 1})
	obs := []float64{0.005, 0.01, 0.02, 0.5, 2, 100}
	var want float64
	for _, v := range obs {
		h.Observe(v)
		want += v
	}
	if got := h.Count(); got != int64(len(obs)) {
		t.Fatalf("count = %d, want %d", got, len(obs))
	}
	if got := h.Sum(); got != want {
		t.Fatalf("sum = %v, want %v (exact)", got, want)
	}

	// Cumulative buckets: le=0.01 → 2 (0.005, 0.01 — bounds inclusive),
	// le=0.1 → 3, le=1 → 4, +Inf → 6.
	text := expose(t, r)
	for _, line := range []string{
		`lat_bucket{le="0.01"} 2`,
		`lat_bucket{le="0.1"} 3`,
		`lat_bucket{le="1"} 4`,
		`lat_bucket{le="+Inf"} 6`,
		`lat_count 6`,
	} {
		if !strings.Contains(text, line+"\n") {
			t.Fatalf("exposition missing %q:\n%s", line, text)
		}
	}
	var sumLine string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "lat_sum ") {
			sumLine = line
			break
		}
	}
	if sumLine == "" {
		t.Fatalf("exposition missing lat_sum line:\n%s", text)
	}
	got, err := strconv.ParseFloat(strings.TrimPrefix(sumLine, "lat_sum "), 64)
	if err != nil || got != want {
		t.Fatalf("lat_sum line %q parsed to %v (err %v), want %v", sumLine, got, err, want)
	}
}

func TestHistogramVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("exec", "exec", []float64{1}, "engine", "variant")
	v.With("general", "sync").Observe(0.5)
	v.With("meanfield", "sync").Observe(2)
	text := expose(t, r)
	for _, line := range []string{
		`exec_bucket{engine="general",variant="sync",le="1"} 1`,
		`exec_bucket{engine="meanfield",variant="sync",le="+Inf"} 1`,
		`exec_bucket{engine="meanfield",variant="sync",le="1"} 0`,
		`exec_count{engine="general",variant="sync"} 1`,
	} {
		if !strings.Contains(text, line+"\n") {
			t.Fatalf("exposition missing %q:\n%s", line, text)
		}
	}
}

func TestFuncMetricsAndEscaping(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("uptime_seconds", "uptime", func() float64 { return 12.5 })
	r.CounterFunc("seq", "sequence", func() float64 { return 42 })
	r.GaugeVec("build_info", `weird "help" with \slash`, "version").With(`v1"\x` + "\n").Set(1)
	text := expose(t, r)
	for _, line := range []string{
		`uptime_seconds 12.5`,
		`seq 42`,
		`build_info{version="v1\"\\x\n"} 1`,
		`# HELP build_info weird "help" with \\slash`,
	} {
		if !strings.Contains(text, line+"\n") {
			t.Fatalf("exposition missing %q:\n%s", line, text)
		}
	}
}

// TestExpositionGolden pins the full rendering of a small fixed registry
// and line-lints it as a minimal Prometheus text-format parser would.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "b counter").Add(3)
	r.Gauge("a_gauge", "a gauge").Set(-2)
	h := r.Histogram("c_seconds", "c histogram", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)

	const want = `# HELP a_gauge a gauge
# TYPE a_gauge gauge
a_gauge -2
# HELP b_total b counter
# TYPE b_total counter
b_total 3
# HELP c_seconds c histogram
# TYPE c_seconds histogram
c_seconds_bucket{le="0.5"} 1
c_seconds_bucket{le="1"} 2
c_seconds_bucket{le="+Inf"} 2
c_seconds_sum 1
c_seconds_count 2
`
	got := expose(t, r)
	if got != want {
		t.Fatalf("golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if err := Lint(got); err != nil {
		t.Fatalf("lint: %v", err)
	}
}

func TestLintRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"orphan_sample 1\n",                        // no TYPE
		"# TYPE x counter\nx one\n",                // non-numeric value
		"# TYPE x counter\nx{le=\"0.5} 1\n",        // unterminated label value
		"# TYPE x counter\n\nx 1\n",                // blank line
		"# TYPE x summary\nx 1\n",                  // unsupported type
		"# TYPE x counter\nx_bucket{le=\"1\"} 1\n", // _bucket on a counter
		"# TYPE x counter\nx{a=\"1\",=\"2\"} 1\n",  // empty label name
	} {
		if err := Lint(bad); err == nil {
			t.Errorf("Lint accepted malformed exposition %q", bad)
		}
	}
}

// TestConcurrentUpdates is the -race stress: hammer one counter, one
// gauge, one histogram vec child set from many goroutines while scraping
// concurrently, then verify totals are exact.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits", "hits")
	g := r.Gauge("busy", "busy")
	hv := r.HistogramVec("lat", "lat", []float64{0.001, 0.01, 0.1}, "engine")

	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			engine := fmt.Sprintf("e%d", w%3)
			h := hv.With(engine)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.0005)
				g.Add(-1)
			}
		}(w)
	}
	// Concurrent scrapes while writers run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	var total int64
	var sum float64
	for _, e := range []string{"e0", "e1", "e2"} {
		total += hv.With(e).Count()
		sum += hv.With(e).Sum()
	}
	if total != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", total, workers*perWorker)
	}
	want := float64(workers*perWorker) * 0.0005
	if math.Abs(sum-want) > 1e-9 {
		t.Fatalf("histogram sum = %v, want %v", sum, want)
	}
	if err := Lint(expose(t, r)); err != nil {
		t.Fatalf("lint: %v", err)
	}
}

func TestNamesOrderAndHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("z", "z")
	r.Counter("a", "a")
	names := r.Names()
	if len(names) != 2 || names[0] != "z" || names[1] != "a" {
		t.Fatalf("Names() = %v, want registration order [z a]", names)
	}
	// Exposition is sorted by name regardless of registration order.
	text := expose(t, r)
	if strings.Index(text, "# HELP a ") > strings.Index(text, "# HELP z ") {
		t.Fatalf("exposition not name-sorted:\n%s", text)
	}
}

func expose(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return sb.String()
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("x", "x")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("x", "x", DefBuckets)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.003)
		}
	})
}
