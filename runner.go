package repro

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/sim"
	"repro/spec"
)

// Spec types, re-exported so callers can stay on the root import. The spec
// package is the single source of truth for run specification; these
// aliases are the same types.
type (
	// GraphSpec declaratively names a topology; see spec.GraphSpec.
	GraphSpec = spec.GraphSpec
	// RuleSpec declaratively selects a Best-of-k protocol; see
	// spec.RuleSpec.
	RuleSpec = spec.RuleSpec
	// RunSpec is the complete declarative description of a simulation job;
	// see spec.RunSpec.
	RunSpec = spec.RunSpec
	// Grid is a cross-product parameter grid expanding into RunSpecs; see
	// spec.Grid.
	Grid = spec.Grid
	// VariantSpec selects the opinion dynamic a RunSpec executes; see
	// spec.VariantSpec.
	VariantSpec = spec.VariantSpec
)

// RoundObserver receives one callback per recorded blue count of a trial:
// first (trial, 0, initial count), then once per executed round. Callbacks
// for one trial arrive in order on that trial's goroutine; distinct trials
// may interleave, so observers shared across trials must synchronise.
type RoundObserver func(trial, round, blueCount int)

// runnerConfig collects the functional options.
type runnerConfig struct {
	maxRounds     int
	workers       int
	engineWorkers int
	observer      RoundObserver
	topology      Topology
}

// RunnerOption configures a Runner.
type RunnerOption func(*runnerConfig)

// WithMaxRounds overrides the spec's per-trial round cap.
func WithMaxRounds(n int) RunnerOption { return func(c *runnerConfig) { c.maxRounds = n } }

// WithWorkers bounds how many trials execute concurrently (0 =
// GOMAXPROCS). Trial outcomes are independent of this setting: every trial
// draws only from its own seed stream.
func WithWorkers(n int) RunnerOption { return func(c *runnerConfig) { c.workers = n } }

// WithEngineWorkers sets the per-trial engine parallelism. The default is
// 1, which makes every trial's trajectory a function of the spec alone —
// the property the CLI/server equivalence guarantees rest on. Values > 1
// shard each round across that many goroutines (trajectories then depend
// on the worker count, deterministically); 0 uses GOMAXPROCS.
func WithEngineWorkers(n int) RunnerOption {
	return func(c *runnerConfig) { c.engineWorkers = n }
}

// WithObserver streams per-round blue counts to fn as trials execute, e.g.
// to feed a live trace.
func WithObserver(fn RoundObserver) RunnerOption { return func(c *runnerConfig) { c.observer = fn } }

// WithTopology injects a pre-built topology instead of building one from
// the spec's GraphSpec — used by graph pools (the bo3serve cache) to share
// one immutable graph across many runners. The caller is responsible for
// the topology actually matching the spec.
func WithTopology(g Topology) RunnerOption { return func(c *runnerConfig) { c.topology = g } }

// Runner executes a RunSpec: Trials independent protocol runs, each with
// the deterministic seed spec.TrialSeed(i), fanned out over a worker pool.
// A Runner is immutable after construction and safe for concurrent use;
// Run and Stream may be called any number of times and always produce the
// same outcomes.
type Runner struct {
	spec   RunSpec
	rule   dynamics.Rule
	engine dynamics.Engine
	cfg    runnerConfig

	buildOnce sync.Once
	g         Topology
	buildErr  error
}

// NewRunner validates the spec, applies the options, and returns a Runner.
// The spec is normalised (Trials 0 → 1) and captured by value; later
// mutation of the caller's copy has no effect.
func NewRunner(s RunSpec, opts ...RunnerOption) (*Runner, error) {
	cfg := runnerConfig{engineWorkers: 1}
	for _, o := range opts {
		o(&cfg)
	}
	s.Normalize()
	if cfg.maxRounds > 0 {
		s.MaxRounds = cfg.maxRounds
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rule, err := s.DynamicsRule()
	if err != nil {
		return nil, err
	}
	engine, err := s.EngineMode()
	if err != nil {
		return nil, err
	}
	r := &Runner{spec: s, rule: rule, engine: engine, cfg: cfg}
	if cfg.topology != nil {
		r.buildOnce.Do(func() { r.g = cfg.topology })
	}
	return r, nil
}

// Spec returns the normalised spec the runner executes.
func (r *Runner) Spec() RunSpec { return r.spec }

// Topology returns the graph the runner executes on, building it from the
// spec on first use (memoised; a build error is returned on every call).
func (r *Runner) Topology() (Topology, error) {
	r.buildOnce.Do(func() { r.g, r.buildErr = r.spec.Build() })
	return r.g, r.buildErr
}

// EngineName reports the resolved round engine ("general" or
// "mean-field") the runner's trials execute on, building the topology if
// needed. The serve layer records it per job. Non-sync variants always run
// per-vertex sampling, so they resolve to "general" without a build.
func (r *Runner) EngineName() (string, error) {
	if r.spec.VariantName() != "sync" {
		return "general", nil
	}
	g, err := r.Topology()
	if err != nil {
		return "", err
	}
	return core.EngineFor(g, r.rule, r.engine), nil
}

// VariantName reports the resolved dynamic the runner's trials execute
// ("sync", "async", "stubborn", or "plurality").
func (r *Runner) VariantName() string { return r.spec.VariantName() }

// TrialResult is one trial's outcome as delivered by Stream.
type TrialResult struct {
	// Trial is the trial index in [0, Trials).
	Trial int
	// Seed is the trial's derived seed, spec.TrialSeed(Trial).
	Seed uint64
	// Report is the full per-trial report (trajectory included).
	Report Report
	// Err is non-nil if the trial failed or was cancelled mid-run.
	Err error
}

// Stream starts the trials and returns a channel delivering each outcome
// as it completes — callers consume results while later trials are still
// running, instead of waiting for the full slice. Delivery order follows
// completion, not trial index; the Trial field identifies each result.
// Every claimed trial delivers exactly one result and the channel is then
// closed, so callers MUST drain the channel until it closes (abandoning it
// early leaks the worker goroutines). Cancelling ctx stops new trials from
// being claimed and aborts in-flight trials at their next round boundary
// (those deliver a result with Err = ctx.Err()), making the drain prompt.
func (r *Runner) Stream(ctx context.Context) (<-chan TrialResult, error) {
	g, err := r.Topology()
	if err != nil {
		return nil, err
	}
	n := r.spec.Trials
	workers := r.cfg.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make(chan TrialResult)
	go func() {
		defer close(out)
		var (
			wg   sync.WaitGroup
			mu   sync.Mutex
			next int
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if ctx.Err() != nil {
						return
					}
					mu.Lock()
					i := next
					next++
					mu.Unlock()
					if i >= n {
						return
					}
					// The send is deliberately unconditional: a claimed
					// trial's result is never dropped, even when ctx is
					// cancelled mid-delivery — racing the send against
					// ctx.Done() would silently lose completed trials from
					// a consumer that is still draining.
					out <- r.runTrial(ctx, g, i)
				}
			}()
		}
		wg.Wait()
	}()
	return out, nil
}

// runTrial executes one trial with its derived seed.
func (r *Runner) runTrial(ctx context.Context, g Topology, i int) TrialResult {
	seed := r.spec.TrialSeed(i)
	opt := core.Options{
		Seed:      seed,
		MaxRounds: r.spec.MaxRounds,
		Workers:   r.cfg.engineWorkers,
		Rule:      r.rule,
		Engine:    r.engine,
		Variant:   r.spec.CoreVariant(),
	}
	if obs := r.cfg.observer; obs != nil {
		opt.OnRound = func(round, blues int) { obs(i, round, blues) }
	}
	rep, err := core.Run(ctx, g, r.spec.Delta, opt)
	return TrialResult{Trial: i, Seed: seed, Report: rep, Err: err}
}

// TrialOutcome is the compact per-trial summary carried by RunReport, in
// the same shape the bo3serve wire format uses.
type TrialOutcome struct {
	Trial     int    `json:"trial"`
	Seed      uint64 `json:"seed"`
	RedWon    bool   `json:"red_won"`
	Consensus bool   `json:"consensus"`
	Rounds    int    `json:"rounds"`
}

// RunReport aggregates a completed run: per-trial outcomes in trial order
// plus summary statistics. Outcomes are a deterministic function of the
// spec (the Runner's execution options never change them).
type RunReport struct {
	// Spec is the normalised spec that produced the report.
	Spec RunSpec `json:"spec"`
	// Outcomes lists the per-trial summaries in trial order.
	Outcomes []TrialOutcome `json:"outcomes"`
	// RedWins and ConsensusCount count trials won by the initial majority
	// and trials reaching a monochromatic state.
	RedWins        int `json:"red_wins"`
	ConsensusCount int `json:"consensus"`
	// MeanRounds and MaxRounds summarise the per-trial round counts.
	MeanRounds float64 `json:"mean_rounds"`
	MaxRounds  int     `json:"max_rounds"`
	// PredictedRounds is the Theorem 1 estimate for the instance, and
	// Precondition the hypothesis diagnostics.
	PredictedRounds int          `json:"predicted_rounds"`
	Precondition    Precondition `json:"precondition"`
	// GraphName and RuleName identify the resolved instance.
	GraphName string `json:"graph_name"`
	RuleName  string `json:"rule"`
	// Reports holds the full per-trial reports (trajectories included) in
	// trial order; omitted from JSON for size.
	Reports []Report `json:"-"`
}

// Run executes every trial and returns the aggregated report. On
// cancellation or a trial error the first error is returned (partial
// results are discarded); use Stream to consume what completes.
func (r *Runner) Run(ctx context.Context) (*RunReport, error) {
	stream, err := r.Stream(ctx)
	if err != nil {
		return nil, err
	}
	rep := &RunReport{
		Spec:     r.spec,
		Outcomes: make([]TrialOutcome, r.spec.Trials),
		Reports:  make([]Report, r.spec.Trials),
		RuleName: r.rule.Name(),
	}
	var firstErr error
	for res := range stream {
		if res.Err != nil {
			if firstErr == nil {
				firstErr = res.Err
			}
			continue
		}
		rep.Reports[res.Trial] = res.Report
		rep.Outcomes[res.Trial] = TrialOutcome{
			Trial:     res.Trial,
			Seed:      res.Seed,
			RedWon:    res.Report.RedWon,
			Consensus: res.Report.Consensus,
			Rounds:    res.Report.Rounds,
		}
	}
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	var tl sim.Tally
	for _, o := range rep.Outcomes {
		tl.Add(o.Rounds, o.RedWon, o.Consensus)
	}
	rep.RedWins = tl.Wins
	rep.ConsensusCount = tl.Consensus
	rep.MeanRounds = tl.MeanRounds()
	rep.MaxRounds = tl.MaxRounds
	rep.PredictedRounds = rep.Reports[0].PredictedRounds
	rep.Precondition = rep.Reports[0].Precondition
	g, _ := r.Topology()
	rep.GraphName = g.Name()
	return rep, nil
}
