package repro

// One benchmark per reproduction experiment (E1–E13 in DESIGN.md), plus
// ablation benches for the design choices DESIGN.md calls out. Each
// experiment bench runs the same code path as cmd/bo3sweep at the Quick
// scale and reports a domain metric via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates every table's data shape.

import (
	"testing"

	"repro/internal/dynamics"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/opinion"
	"repro/internal/rng"
)

func benchCfg(i int) experiments.Config {
	c := experiments.Quick()
	c.Seed = uint64(i) + 1
	return c
}

func BenchmarkE1ConsensusScalingN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E1ConsensusScaling(benchCfg(i))
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.MeanRounds, "rounds@maxN")
		b.ReportMetric(last.RedWins.P, "redwin-rate")
	}
}

func BenchmarkE2DeltaSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E2DeltaSweep(benchCfg(i))
		b.ReportMetric(res.SlopePerLogInvDelta().Slope, "rounds-per-ln(1/delta)")
	}
}

func BenchmarkE3IdealRecursion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E3IdealRecursion(benchCfg(i))
		b.ReportMetric(res.MaxAbsError(), "max-abs-error")
	}
}

func BenchmarkE4SprinklingMajorisation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E4SprinklingMajorisation(benchCfg(i))
		ok := 0.0
		if res.AllMajorised() {
			ok = 1
		}
		b.ReportMetric(ok, "majorised")
	}
}

func BenchmarkE5TernaryThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E5TernaryThreshold(benchCfg(i))
		b.ReportMetric(float64(res.Violations()), "violations")
	}
}

func BenchmarkE6CollisionTransform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E6CollisionTransform(benchCfg(i))
		ok := 0.0
		if res.AllSound() {
			ok = 1
		}
		b.ReportMetric(ok, "sound")
	}
}

func BenchmarkE7CollisionTail(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E7CollisionTail(benchCfg(i))
		ok := 0.0
		if res.AllMajorised() {
			ok = 1
		}
		b.ReportMetric(ok, "majorised")
	}
}

func BenchmarkE8DeltaGrowth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E8DeltaGrowth(benchCfg(i))
		b.ReportMetric(res.MinGrowthBelowFixedPoint(), "min-growth-factor")
	}
}

func BenchmarkE9BaselineComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E9BaselineComparison(benchCfg(i))
		voter := res.MeanRoundsFor("best-of-1", experiments.KindComplete)
		bo3 := res.MeanRoundsFor("best-of-3", experiments.KindComplete)
		if bo3 > 0 {
			b.ReportMetric(voter/bo3, "voter/bo3-speedup")
		}
	}
}

func BenchmarkE10DensityGate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E10DensityGate(benchCfg(i))
		var dense, sparse float64
		for _, row := range res.Rows {
			if row.Kind == experiments.KindRegular {
				dense = row.MeanRounds
			}
			if row.Kind == experiments.KindTorus {
				sparse = row.MeanRounds
			}
		}
		if dense > 0 {
			b.ReportMetric(sparse/dense, "sparse/dense-slowdown")
		}
	}
}

func BenchmarkE11CobraDuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E11CobraDuality(benchCfg(i))
		b.ReportMetric(res.MaxRelError(), "max-rel-error")
	}
}

func BenchmarkE12SprinklingFigure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E12SprinklingFigure(benchCfg(i))
		b.ReportMetric(float64(res.ArtificialAdded), "artificial-nodes")
	}
}

func BenchmarkE13PhaseSchedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E13PhaseSchedule(benchCfg(i))
		for _, row := range res.Rows {
			if row.Phase == "total" {
				b.ReportMetric(float64(row.Measured), "measured-total-rounds")
			}
		}
	}
}

func BenchmarkE14PluralityConsensus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E14PluralityConsensus(benchCfg(i))
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.MeanRounds, "rounds@maxQ")
	}
}

func BenchmarkE15StubbornZealots(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E15StubbornZealots(benchCfg(i))
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.FinalBlueFrac, "blue-frac@maxZealots")
	}
}

func BenchmarkE16AdversarialPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E16AdversarialPlacement(benchCfg(i))
		b.ReportMetric(res.SlowdownOnTorus(), "torus-clustered-slowdown")
	}
}

func BenchmarkE17ForwardBackwardDuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E17ForwardBackwardDuality(benchCfg(i))
		ok := 0.0
		if res.AllCompatible() {
			ok = 1
		}
		b.ReportMetric(ok, "compatible")
	}
}

func BenchmarkE18AsyncVsSync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E18AsyncVsSync(benchCfg(i))
		if len(res.Rows) == 2 && res.Rows[0].MeanRounds > 0 {
			b.ReportMetric(res.Rows[1].MeanRounds/res.Rows[0].MeanRounds, "async/sync-ratio")
		}
	}
}

func BenchmarkE19NoiseThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E19NoiseThreshold(benchCfg(i))
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.FinalBlueFrac, "blue-frac@noise0.5")
	}
}

func BenchmarkE20ExactChainValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E20ExactChainValidation(benchCfg(i))
		ok := 0.0
		if res.AllWithinIntervals() {
			ok = 1
		}
		b.ReportMetric(ok, "agree")
	}
}

func BenchmarkE21SpectralComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E21SpectralComparison(benchCfg(i))
		b.ReportMetric(res.Rows[0].MeanRounds, "dense-rounds")
	}
}

// --- Ablation benches (design choices listed in DESIGN.md) ---

// benchStepOnce builds a process and times repeated Step calls.
func benchStep(b *testing.B, g dynamics.Topology, rule dynamics.Rule, workers int) {
	b.Helper()
	cfg := opinion.RandomConfig(g.N(), 0.4, rng.New(7))
	p, err := dynamics.New(g, rule, cfg, dynamics.Options{Seed: 8, Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
	b.ReportMetric(float64(g.N())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mvertex/s")
}

func BenchmarkAblationStepSequential(b *testing.B) {
	g := graph.RandomRegular(1<<15, 32, rng.New(1))
	benchStep(b, g, dynamics.BestOfThree, 1)
}

func BenchmarkAblationStepParallel(b *testing.B) {
	g := graph.RandomRegular(1<<15, 32, rng.New(1))
	benchStep(b, g, dynamics.BestOfThree, 0)
}

func BenchmarkAblationWithReplacement(b *testing.B) {
	g := graph.RandomRegular(1<<14, 32, rng.New(2))
	benchStep(b, g, dynamics.Rule{K: 3}, 0)
}

func BenchmarkAblationWithoutReplacement(b *testing.B) {
	g := graph.RandomRegular(1<<14, 32, rng.New(2))
	benchStep(b, g, dynamics.Rule{K: 3, WithoutReplacement: true}, 0)
}

func BenchmarkAblationTieKeepVsRandom(b *testing.B) {
	g := graph.RandomRegular(1<<14, 32, rng.New(3))
	b.Run("keep", func(b *testing.B) { benchStep(b, g, dynamics.Rule{K: 2, Tie: dynamics.TieKeep}, 0) })
	b.Run("random", func(b *testing.B) { benchStep(b, g, dynamics.Rule{K: 2, Tie: dynamics.TieRandom}, 0) })
}

func BenchmarkAblationVirtualVsMaterialisedComplete(b *testing.B) {
	const n = 4096
	b.Run("virtual", func(b *testing.B) { benchStep(b, graph.NewKn(n), dynamics.BestOfThree, 0) })
	b.Run("materialised", func(b *testing.B) { benchStep(b, graph.Complete(n), dynamics.BestOfThree, 0) })
}

func BenchmarkEndToEndConsensus(b *testing.B) {
	g := graph.RandomRegular(1<<14, 128, rng.New(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := RunBestOfThree(g, 0.05, Options{Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.Rounds), "rounds")
	}
}
